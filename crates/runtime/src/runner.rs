//! Scenario execution: wire world + OS + behaviors, run, collect.

use crate::behaviors::{ConstSleepWorker, FerretWorker, MetronomeWorker, StaticPoller, XdpHandler};
use crate::calib;
use crate::report::{QueueReport, RampPoint, RunReport};
use crate::scenario::{Scenario, SystemKind};
use crate::world::{SimQueue, World};
use metronome_apps::FerretJob;
use metronome_core::controller::AdaptiveController;
use metronome_core::MetronomeConfig;
use metronome_os::executor::OsSim;
use metronome_os::ThreadId;
use metronome_sim::{Nanos, Rng};
use metronome_telemetry::{CounterSnapshot, Sampler};
use metronome_traffic::{ArrivalProcess, InjectionStats, PlannedFaults};

/// Execute a scenario and produce its report.
pub fn run(sc: &Scenario) -> RunReport {
    // ---- build the world ---------------------------------------------------
    let mut arrivals = sc.traffic.build(sc.n_queues, &sc.nic, sc.seed);
    // Under a fault plan, each queue's arrivals pass through a seeded
    // injector; the shared stats handles stay readable after boxing so
    // suppressed packets are mirrored into the fault-drop accounting.
    let mut fault_stats: Vec<InjectionStats> = Vec::new();
    if let Some(plan) = &sc.faults {
        arrivals = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let pf =
                    PlannedFaults::new(a, plan.clone(), Rng::new(sc.seed).stream(0xFA + i as u64));
                fault_stats.push(pf.stats());
                Box::new(pf) as Box<dyn ArrivalProcess>
            })
            .collect();
    }
    let metro_cfg = match &sc.system {
        SystemKind::Metronome(cfg) => cfg.clone(),
        // Baselines still need a controller object for the world's queue
        // bookkeeping; it just never drives any sleeping.
        _ => MetronomeConfig {
            m_threads: sc.n_queues.max(1),
            n_queues: sc.n_queues,
            ..MetronomeConfig::default()
        },
    };
    let tx_batch = metro_cfg.tx_batch as u64;
    let queues: Vec<SimQueue> = arrivals
        .into_iter()
        .map(|a| SimQueue::new(sc.ring_size, a, tx_batch, sc.latency_stride))
        .collect();
    let controller = AdaptiveController::new(metro_cfg.clone());
    let n_net = sc.n_net_threads();
    let mut world = World::new(queues, controller, calib::BASE_PATH_LATENCY, sc.seed);
    world.equal_timeouts = sc.equal_timeouts;

    // ---- build the OS -------------------------------------------------------
    let ferret_cores = match &sc.ferret {
        Some(f) if !f.on_net_cores => f.n_workers,
        _ => 0,
    };
    let mut os_cfg = sc.os.clone();
    // The paper measures one isolated 8-core NUMA node regardless of how
    // many cores the workload occupies — package power is only comparable
    // across systems if the idle cores are present in every run.
    os_cfg.n_cores = (n_net + ferret_cores)
        .max(sc.ferret.as_ref().map_or(0, |f| f.n_workers))
        .max(sc.os.n_cores)
        .max(1);
    let mut os: OsSim<World> = OsSim::new(os_cfg, sc.seed);

    let mut net_tids: Vec<ThreadId> = Vec::new();
    match &sc.system {
        SystemKind::Metronome(cfg) => {
            for i in 0..cfg.m_threads {
                let b =
                    MetronomeWorker::new(i, i % cfg.n_queues, sc.app, cfg.burst, sc.sleep_service);
                net_tids.push(os.spawn(format!("metronome-{i}"), i, sc.net_nice, Box::new(b)));
            }
        }
        SystemKind::StaticDpdk => {
            for q in 0..sc.n_queues {
                let b = StaticPoller::new(q, sc.app, metro_cfg.burst as u64);
                net_tids.push(os.spawn(format!("static-{q}"), q, sc.net_nice, Box::new(b)));
            }
        }
        SystemKind::Xdp => {
            for q in 0..sc.n_queues {
                let b = XdpHandler::new(q);
                net_tids.push(os.spawn(format!("xdp-{q}"), q, sc.net_nice, Box::new(b)));
            }
        }
        SystemKind::ConstSleep { period } => {
            for q in 0..sc.n_queues {
                let b = ConstSleepWorker::new(
                    q,
                    sc.app,
                    metro_cfg.burst as u64,
                    *period,
                    sc.sleep_service,
                );
                net_tids.push(os.spawn(format!("const-sleep-{q}"), q, sc.net_nice, Box::new(b)));
            }
        }
        SystemKind::Idle => {}
    }

    let mut ferret_standalone = None;
    if let Some(f) = &sc.ferret {
        let mhz = sc.os.freq.max_mhz();
        let job = FerretJob::sized_for(f.standalone, f.n_workers, mhz);
        ferret_standalone = Some(f.standalone);
        for w in 0..f.n_workers {
            let core = if f.on_net_cores {
                w % n_net.max(1)
            } else {
                n_net + w
            };
            let b = FerretWorker::new(w, job.cycles_per_worker(), job.chunk);
            os.spawn(format!("ferret-{w}"), core, f.nice, Box::new(b));
        }
    }

    // ---- run ----------------------------------------------------------------
    // Capacity estimates amortize the burst overhead over the *configured*
    // burst size, so a burst-ablation scenario's µ matches what the
    // backend actually charges per chunk.
    let mu = sc.app.mu_pps(sc.os.freq.max_mhz(), metro_cfg.burst);
    let mut series = Vec::new();
    let mut timeseries = None;
    if let Some(every) = sc.series_every {
        // The simulation's sampling points are scheduled events: the run
        // is advanced window by window and the cumulative world/OS
        // counters are snapshotted at each boundary. The telemetry
        // sampler differences consecutive snapshots into windows, so the
        // per-window columns sum exactly to the end-of-run aggregates.
        let mut sampler = Sampler::new(every);
        let mut t = Nanos::ZERO;
        let mut last_cpu = Nanos::ZERO;
        while t < sc.duration {
            t = (t + every).min(sc.duration);
            os.run_until(&mut world, t);
            let cpu_now: Nanos = net_tids.iter().map(|&tid| os.thread_cpu(tid)).sum();
            let window_cpu = cpu_now.saturating_sub(last_cpu);
            last_cpu = cpu_now;
            let est: f64 = (0..sc.n_queues)
                .map(|q| {
                    world
                        .controller
                        .estimated_rate_pps(q, mu / sc.n_queues as f64)
                })
                .sum();
            series.push(RampPoint {
                t_s: t.as_secs_f64(),
                true_mpps: sc.traffic.nominal_pps(t) / 1e6,
                est_mpps: est / 1e6,
                ts_us: world.controller.ts(0).as_micros_f64(),
                rho: world.controller.rho(0),
                cpu_pct: window_cpu.as_secs_f64() / every.as_secs_f64() * 100.0,
            });
            let mut snap = CounterSnapshot::new(t);
            snap.discipline = sc.system.label();
            snap.retrieved = world.total_drained();
            // Fault-suppressed packets never reached the rings but were
            // offered load; packets still held by a stall at the end of
            // the run are stranded upstream and count as fault drops in
            // the closing window (mid-run they may yet be released).
            let fault_drops: u64 = fault_stats.iter().map(InjectionStats::drops).sum();
            let stranded: u64 = if t >= sc.duration {
                fault_stats.iter().map(InjectionStats::held).sum()
            } else {
                0
            };
            snap.dropped_fault = fault_drops + stranded;
            snap.offered = world.total_offered() + snap.dropped_fault;
            snap.dropped_ring = world.total_dropped();
            snap.wakeups = net_tids.iter().map(|&tid| os.thread_wakeups(tid)).sum();
            snap.busy_nanos = cpu_now.as_nanos();
            // Idle-thread time: everything the net threads did not burn.
            snap.sleep_nanos =
                (net_tids.len() as u64 * t.as_nanos()).saturating_sub(snap.busy_nanos);
            snap.ts_ns = (0..sc.n_queues)
                .map(|q| world.controller.ts(q).as_nanos())
                .collect();
            snap.rho = (0..sc.n_queues).map(|q| world.controller.rho(q)).collect();
            snap.occupancy = world.queues.iter().map(|q| q.ring.occupancy()).collect();
            snap.energy_joules = os.package_energy(t);
            if sc.latency_stride > 0 {
                snap.latency = Some(world.latency_hist.clone());
            }
            sampler.sample(snap);
        }
        timeseries = Some(sampler.into_series());
    } else {
        os.run_until(&mut world, sc.duration);
    }

    // Final flush so held Tx batches don't skew tail latency samples.
    for q in 0..sc.n_queues {
        world.flush_queue_tx(q, sc.duration);
    }

    // ---- collect -------------------------------------------------------------
    let wall = sc.duration.as_secs_f64();
    let cpu_per_thread: Vec<f64> = net_tids
        .iter()
        .map(|&tid| os.thread_cpu(tid).as_secs_f64() / wall * 100.0)
        .collect();
    let queues: Vec<QueueReport> = (0..sc.n_queues)
        .map(|qi| {
            let q = &world.queues[qi];
            let st = world.controller.queue(qi);
            QueueReport {
                mean_vacation_us: q.vacations.mean(),
                mean_busy_us: q.busy_periods.mean(),
                nv: q.nv.mean(),
                rho: world.controller.rho(qi),
                total_tries: st.total_tries,
                busy_tries: st.busy_tries,
                busy_try_fraction: st.busy_try_fraction(),
                drained: q.drained_total(),
                dropped: q.dropped_total(),
                dropped_pool: 0,
            }
        })
        .collect();

    let ferret_completion = sc.ferret.as_ref().and_then(|f| {
        (world.ferret_done.len() == f.n_workers)
            .then(|| world.ferret_done.iter().map(|c| c.at).max().unwrap())
    });

    // Fault-suppressed packets (plus any still stalled upstream at the
    // horizon) are offered load that never reached the rings: they join
    // both sides of the conservation identity as fault drops.
    let fault_total: u64 = fault_stats.iter().map(|s| s.drops() + s.held()).sum();
    let mut report = RunReport::from_counts(
        sc.name.clone(),
        sc.duration,
        world.total_offered() + fault_total,
        world.total_drained(),
        world.total_dropped() + fault_total,
    );
    report.dropped_ring = world.total_dropped();
    report.dropped_fault = fault_total;
    report.cpu_total_pct = cpu_per_thread.iter().sum();
    report.cpu_per_thread_pct = cpu_per_thread;
    report.power_watts = os.package_watts(sc.duration);
    report.latency_us = world.latency_us.boxplot();
    report.queues = queues;
    report.busy_try_fraction = world.controller.busy_try_fraction();
    report.total_wakes = net_tids.iter().map(|&tid| os.thread_wakeups(tid)).sum();
    report.ferret_completion = ferret_completion;
    report.ferret_standalone = ferret_standalone;
    report.series = series;
    report.timeseries = timeseries;
    report.vacation_samples_us = std::mem::take(&mut world.vacation_samples_us);
    report
}
