//! Experiment configuration: which system, which workload, which knobs.

use crate::apps_profile::AppProfile;
use crate::calib;
use metronome_core::discipline::DisciplineKind;
use metronome_core::{ExecBackend, MetronomeConfig};
use metronome_dpdk::nic::{gbps_to_pps, NicProfile};
use metronome_dpdk::shared_ring::RingPath;
use metronome_os::config::{DaemonConfig, Governor, OsConfig};
use metronome_os::sleep::SleepService;
use metronome_sim::{Nanos, Rng};
use metronome_traffic::{
    ArrivalProcess, BurstyCbr, Cbr, FaultPlan, OnOff, Poisson, Silent, Staircase, UnbalancedTrace,
};

/// Which packet-retrieval system runs.
///
/// Every variant executes on **both** backends: the discrete-event
/// simulator models it with calibrated costs, and the realtime runner
/// maps it onto a `metronome_core::discipline` worker set (Metronome →
/// the Listing 2 engine, StaticDpdk → `BusyPoll`, Xdp → `InterruptLike`
/// parked on doorbells, ConstSleep → fixed-period retrieval, Idle → no
/// workers).
#[derive(Clone, Debug)]
pub enum SystemKind {
    /// The paper's contribution.
    Metronome(MetronomeConfig),
    /// Classic DPDK busy polling, one thread per queue.
    StaticDpdk,
    /// XDP/NAPI interrupt-driven baseline, one core per queue.
    Xdp,
    /// Fixed-period retrieval (`r_sleep(P)` between drains), one thread
    /// per queue — the constant-sleep strawman Metronome's adaptive `TS`
    /// beats.
    ConstSleep {
        /// The fixed retrieval period `P`.
        period: Nanos,
    },
    /// No packet system at all — baseline for co-tenant-alone runs
    /// (the "ferret alone" bars of Fig. 12).
    Idle,
}

impl SystemKind {
    /// Stable lowercase label shared by telemetry series, reports and
    /// thread names — the realtime disciplines' own vocabulary
    /// ([`DisciplineKind::label`]), plus "idle" for the no-system case.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Metronome(_) => DisciplineKind::Metronome.label(),
            SystemKind::StaticDpdk => DisciplineKind::BusyPoll.label(),
            SystemKind::Xdp => DisciplineKind::InterruptLike.label(),
            SystemKind::ConstSleep { .. } => DisciplineKind::ConstSleep.label(),
            SystemKind::Idle => "idle",
        }
    }
}

/// The offered workload.
#[derive(Clone, Debug)]
pub enum TrafficSpec {
    /// Constant rate in packets per second (spread evenly over queues).
    CbrPps(f64),
    /// Constant rate in Gb/s of 64 B frames.
    CbrGbps(f64),
    /// Poisson arrivals at the given mean pps.
    PoissonPps(f64),
    /// The Fig. 9 staircase: up to `peak_pps` in `n_steps` steps of
    /// `step` duration each, then back down.
    RampUpDown {
        /// Peak aggregate rate.
        peak_pps: f64,
        /// Steps up (and down).
        n_steps: usize,
        /// Duration of each step.
        step: Nanos,
    },
    /// Table III: 30% of traffic on one flow, 70% spread randomly,
    /// dispatched by real Toeplitz RSS shares.
    Unbalanced {
        /// Aggregate rate.
        total_pps: f64,
    },
    /// On/off bursts (XDP reactivity comparisons).
    OnOff {
        /// Rate during a burst.
        burst_pps: f64,
        /// Burst length.
        on: Nanos,
        /// Silence length.
        off: Nanos,
    },
    /// No traffic (idle CPU/power floors).
    Silent,
}

impl TrafficSpec {
    /// Build the per-queue arrival processes. The aggregate rate is capped
    /// at what the NIC can deliver (`nic.max_pps(64)`).
    pub fn build(
        &self,
        n_queues: usize,
        nic: &NicProfile,
        seed: u64,
    ) -> Vec<Box<dyn ArrivalProcess>> {
        let cap = nic.max_pps(64);
        let per_queue = |total: f64| (total.min(cap)) / n_queues as f64;
        match self {
            TrafficSpec::CbrPps(pps) => {
                let rate = per_queue(*pps);
                let wire_gap = Nanos((1e9 / cap) as u64);
                (0..n_queues)
                    .map(|i| {
                        // Stagger queue phases so arrivals interleave like
                        // RSS-dispatched traffic rather than in lockstep.
                        let offset = if *pps > 0.0 {
                            Nanos((i as f64 * 1e9 / pps.min(cap)) as u64)
                        } else {
                            Nanos::ZERO
                        };
                        if rate > 0.0 && rate < 0.7 * cap / n_queues as f64 {
                            // Sub-line-rate CBR arrives as generator DMA
                            // trains (see BurstyCbr docs).
                            Box::new(BurstyCbr::new(rate, 32, wire_gap, offset))
                                as Box<dyn ArrivalProcess>
                        } else {
                            Box::new(Cbr::new(rate, offset)) as Box<dyn ArrivalProcess>
                        }
                    })
                    .collect()
            }
            TrafficSpec::CbrGbps(gbps) => {
                TrafficSpec::CbrPps(gbps_to_pps(*gbps, 64)).build(n_queues, nic, seed)
            }
            TrafficSpec::PoissonPps(pps) => {
                let rate = per_queue(*pps);
                (0..n_queues)
                    .map(|i| {
                        Box::new(Poisson::new(
                            rate,
                            Nanos::ZERO,
                            Rng::new(seed).stream(0xA0 + i as u64),
                        )) as Box<dyn ArrivalProcess>
                    })
                    .collect()
            }
            TrafficSpec::RampUpDown {
                peak_pps,
                n_steps,
                step,
            } => {
                let peak = per_queue(*peak_pps);
                (0..n_queues)
                    .map(|_| {
                        Box::new(Staircase::ramp_up_down(peak, *n_steps, *step))
                            as Box<dyn ArrivalProcess>
                    })
                    .collect()
            }
            TrafficSpec::Unbalanced { total_pps } => {
                let trace = UnbalancedTrace::table3(seed);
                let shares = trace.queue_shares(n_queues);
                let total = total_pps.min(cap);
                shares
                    .iter()
                    .map(|&s| Box::new(Cbr::new(total * s, Nanos::ZERO)) as Box<dyn ArrivalProcess>)
                    .collect()
            }
            TrafficSpec::OnOff { burst_pps, on, off } => {
                let rate = per_queue(*burst_pps);
                (0..n_queues)
                    .map(|_| Box::new(OnOff::new(rate, *on, *off)) as Box<dyn ArrivalProcess>)
                    .collect()
            }
            TrafficSpec::Silent => (0..n_queues)
                .map(|_| Box::new(Silent) as Box<dyn ArrivalProcess>)
                .collect(),
        }
    }

    /// Nominal aggregate rate at `t` (pps), before NIC capping.
    pub fn nominal_pps(&self, t: Nanos) -> f64 {
        match self {
            TrafficSpec::CbrPps(pps) => *pps,
            TrafficSpec::CbrGbps(gbps) => gbps_to_pps(*gbps, 64),
            TrafficSpec::PoissonPps(pps) => *pps,
            TrafficSpec::RampUpDown {
                peak_pps,
                n_steps,
                step,
            } => {
                // Mirror Staircase::ramp_up_down's schedule.
                let s = Staircase::ramp_up_down(*peak_pps, *n_steps, *step);
                s.rate_pps(t)
            }
            TrafficSpec::Unbalanced { total_pps } => *total_pps,
            TrafficSpec::OnOff { burst_pps, on, off } => {
                let cycle = (*on + *off).as_nanos();
                if cycle == 0 || t.as_nanos() % cycle < on.as_nanos() {
                    *burst_pps
                } else {
                    0.0
                }
            }
            TrafficSpec::Silent => 0.0,
        }
    }
}

/// Co-located ferret job specification (paper §V-E).
#[derive(Clone, Debug)]
pub struct FerretSpec {
    /// Worker threads.
    pub n_workers: usize,
    /// Standalone (uncontended) completion time of the whole job.
    pub standalone: Nanos,
    /// Niceness of the ferret/VM threads.
    pub nice: i8,
    /// Pin ferret workers to the same cores as the packet threads
    /// (the sharing experiments) instead of separate cores.
    pub on_net_cores: bool,
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Report label.
    pub name: String,
    /// System under test.
    pub system: SystemKind,
    /// Application cost profile.
    pub app: AppProfile,
    /// Offered workload.
    pub traffic: TrafficSpec,
    /// Simulated duration.
    pub duration: Nanos,
    /// Rx queues.
    pub n_queues: usize,
    /// Descriptor ring size per queue.
    pub ring_size: usize,
    /// Mbuf pool population for the realtime backend (`None` = sized from
    /// the rings: enough to fill every ring twice over, so normal runs
    /// never see pool exhaustion). The simulation backend does not model
    /// the pool and ignores this.
    pub mbuf_pool: Option<usize>,
    /// NIC device profile.
    pub nic: NicProfile,
    /// OS model configuration (governor, scheduler, daemon, power).
    pub os: OsConfig,
    /// Niceness of the packet-retrieval threads (paper: −20 for
    /// Metronome's "slight scheduling advantage").
    pub net_nice: i8,
    /// Optional co-located ferret job.
    pub ferret: Option<FerretSpec>,
    /// Sleep primitive used by Metronome threads.
    pub sleep_service: SleepService,
    /// Equal-timeout ablation: backups sleep `TS` instead of `TL`.
    pub equal_timeouts: bool,
    /// Latency sampling stride (0 disables latency measurement).
    pub latency_stride: u64,
    /// Record a time series every this often (Fig. 9).
    pub series_every: Option<Nanos>,
    /// Scheduled fault injection (soak/chaos runs). Both backends realize
    /// the plan and count suppressed packets as `DropCause::Fault`, so
    /// fault runs still reconcile exactly.
    pub faults: Option<FaultPlan>,
    /// Execution backend of the realtime worker set: one OS thread per
    /// worker (the default, the paper's model) or cooperative tasks on a
    /// sharded async executor — the 1000+-queue scale path. The
    /// simulation backend models threads and ignores this.
    pub exec: ExecBackend,
    /// Ring transport under the realtime RSS port (SPSC fast path by
    /// default; MPSC and the locked fallback are selectable so every
    /// path is exercised end-to-end). Simulation ignores this.
    pub ring_path: RingPath,
    /// Flight-recorder tracing of the realtime worker set: per-worker (or
    /// per-shard on the async backend) event rings plus wake-latency /
    /// oversleep / scheduler-delay histograms, dumped into the report.
    /// Off by default — the disabled path is a compile-time no-op on the
    /// record path. Simulation ignores this.
    pub trace: bool,
    /// Generator producer shards on the realtime backend. `1` (the
    /// default) keeps the single-threaded inline generator; `G > 1` splits
    /// the arrival schedule across `G` concurrent producer threads
    /// assigned by flow (flow → shard, preserving per-flow order), each
    /// with its own pacer slice, mempool cache and scatter arena. Multiple
    /// producers need a multi-producer ring, so `G > 1` auto-upgrades
    /// `ring_path` from SPSC to MPSC at run time. Simulation ignores this.
    pub gen_shards: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    fn base(name: impl Into<String>, system: SystemKind, n_queues: usize) -> Self {
        Scenario {
            name: name.into(),
            system,
            app: AppProfile::l3fwd(),
            traffic: TrafficSpec::Silent,
            duration: Nanos::from_secs(2),
            n_queues,
            ring_size: calib::RX_RING_SIZE,
            mbuf_pool: None,
            nic: NicProfile::X520,
            os: OsConfig::default(),
            net_nice: 0,
            ferret: None,
            sleep_service: SleepService::HrSleep,
            equal_timeouts: false,
            latency_stride: 0,
            series_every: None,
            faults: None,
            exec: ExecBackend::Threads,
            ring_path: RingPath::Spsc,
            trace: false,
            gen_shards: 1,
            seed: 0xC0FFEE,
        }
    }

    /// A Metronome scenario (nice −20 per the paper's setup).
    pub fn metronome(name: impl Into<String>, cfg: MetronomeConfig, traffic: TrafficSpec) -> Self {
        cfg.validate().expect("invalid Metronome config");
        let n_queues = cfg.n_queues;
        let mut s = Scenario::base(name, SystemKind::Metronome(cfg), n_queues);
        s.net_nice = -20;
        s.traffic = traffic;
        s
    }

    /// A static-DPDK scenario (one busy-poll thread per queue).
    pub fn static_dpdk(name: impl Into<String>, n_queues: usize, traffic: TrafficSpec) -> Self {
        let mut s = Scenario::base(name, SystemKind::StaticDpdk, n_queues);
        s.traffic = traffic;
        s
    }

    /// An XDP scenario (one interrupt-driven core per queue).
    pub fn xdp(name: impl Into<String>, n_queues: usize, traffic: TrafficSpec) -> Self {
        let mut s = Scenario::base(name, SystemKind::Xdp, n_queues);
        s.traffic = traffic;
        s
    }

    /// A constant-sleep scenario: one thread per queue draining on a
    /// fixed `period` timer (the naive `r_sleep` baseline).
    pub fn const_sleep(
        name: impl Into<String>,
        n_queues: usize,
        period: Nanos,
        traffic: TrafficSpec,
    ) -> Self {
        assert!(!period.is_zero(), "constant sleep period must be positive");
        let mut s = Scenario::base(name, SystemKind::ConstSleep { period }, n_queues);
        s.traffic = traffic;
        s
    }

    /// A scenario with no packet system (co-tenant baselines).
    pub fn idle(name: impl Into<String>) -> Self {
        Scenario::base(name, SystemKind::Idle, 1)
    }

    /// Set the application profile.
    pub fn with_app(mut self, app: AppProfile) -> Self {
        self.app = app;
        self
    }

    /// Set the run duration.
    pub fn with_duration(mut self, d: Nanos) -> Self {
        self.duration = d;
        self
    }

    /// Set the cpufreq governor.
    pub fn with_governor(mut self, g: Governor) -> Self {
        self.os.governor = g;
        self
    }

    /// Use the XL710 40 G profile (and its 37 Mpps cap).
    pub fn with_nic(mut self, nic: NicProfile) -> Self {
        self.nic = nic;
        self
    }

    /// Set the descriptor ring size.
    pub fn with_ring(mut self, size: usize) -> Self {
        self.ring_size = size;
        self
    }

    /// Set the realtime backend's mbuf pool population (undersize it to
    /// provoke pool-exhaustion drops; the drop-cause breakdown in the
    /// report tells pool exhaustion from ring tail-drop).
    pub fn with_mbuf_pool(mut self, population: usize) -> Self {
        self.mbuf_pool = Some(population);
        self
    }

    /// Enable latency measurement with the default MoonGen-like stride.
    pub fn with_latency(mut self) -> Self {
        self.latency_stride = calib::LATENCY_SAMPLE_STRIDE;
        self
    }

    /// Enable latency measurement with a custom stride.
    pub fn with_latency_stride(mut self, stride: u64) -> Self {
        self.latency_stride = stride;
        self
    }

    /// Record the Fig. 9-style time series.
    pub fn with_series(mut self, every: Nanos) -> Self {
        self.series_every = Some(every);
        self
    }

    /// Inject scheduled faults (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Add a co-located ferret job.
    pub fn with_ferret(mut self, f: FerretSpec) -> Self {
        self.ferret = Some(f);
        self
    }

    /// Choose the sleep service (nanosleep ablations).
    pub fn with_sleep_service(mut self, s: SleepService) -> Self {
        self.sleep_service = s;
        self
    }

    /// Enable the equal-timeout ablation.
    pub fn with_equal_timeouts(mut self) -> Self {
        self.equal_timeouts = true;
        self
    }

    /// Set the packet threads' niceness.
    pub fn with_net_nice(mut self, nice: i8) -> Self {
        self.net_nice = nice;
        self
    }

    /// Disable kernel-daemon interference (clean model-validation runs).
    pub fn without_daemon(mut self) -> Self {
        self.os.daemon = DaemonConfig::disabled();
        self
    }

    /// Choose the realtime execution backend explicitly.
    pub fn with_exec(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// Run the realtime worker set on the async executor with the given
    /// shard count (shorthand for
    /// `with_exec(ExecBackend::Async { shards })`).
    pub fn with_async_backend(mut self, shards: usize) -> Self {
        self.exec = ExecBackend::Async { shards };
        self
    }

    /// Choose the ring transport of the realtime RSS port.
    pub fn with_ring_path(mut self, path: RingPath) -> Self {
        self.ring_path = path;
        self
    }

    /// Enable flight-recorder tracing of the realtime worker set.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Split realtime generation across `shards` producer threads
    /// (flow-sharded; `G > 1` auto-upgrades an SPSC ring path to MPSC).
    ///
    /// # Panics
    /// If `shards` is zero — a run with no producers offers nothing.
    pub fn with_gen_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "gen_shards must be at least 1");
        self.gen_shards = shards;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of packet-retrieval threads this scenario spawns.
    pub fn n_net_threads(&self) -> usize {
        match &self.system {
            SystemKind::Metronome(cfg) => cfg.m_threads,
            SystemKind::StaticDpdk | SystemKind::Xdp | SystemKind::ConstSleep { .. } => {
                self.n_queues
            }
            SystemKind::Idle => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_split_across_queues() {
        let spec = TrafficSpec::CbrPps(4e6);
        let mut qs = spec.build(4, &NicProfile::XL710, 1);
        assert_eq!(qs.len(), 4);
        let n = qs[0].drain(Nanos::from_millis(10), None);
        // 1 Mpps per queue for 10 ms ≈ 10k packets; sub-line-rate CBR is
        // emitted as 32-packet DMA trains, so the window edge can hold a
        // partial train.
        assert!((n as f64 - 10_000.0).abs() <= 32.0, "{n}");
    }

    #[test]
    fn traffic_capped_at_nic_limit() {
        // 59 Mpps offered on an XL710 caps at 37 Mpps.
        let spec = TrafficSpec::CbrPps(59e6);
        let mut qs = spec.build(1, &NicProfile::XL710, 1);
        let n = qs[0].drain(Nanos::from_millis(1), None);
        assert!((n as f64 - 37_000.0).abs() < 5.0, "{n}");
    }

    #[test]
    fn gbps_conversion_uses_64b_framing() {
        let spec = TrafficSpec::CbrGbps(10.0);
        assert!((spec.nominal_pps(Nanos::ZERO) - 14_880_952.38).abs() < 1.0);
    }

    #[test]
    fn unbalanced_shares_skewed() {
        let spec = TrafficSpec::Unbalanced { total_pps: 3e6 };
        let mut qs = spec.build(3, &NicProfile::X520, 42);
        let counts: Vec<u64> = qs
            .iter_mut()
            .map(|q| q.drain(Nanos::from_millis(100), None))
            .collect();
        let total: u64 = counts.iter().sum();
        let max = *counts.iter().max().unwrap();
        let share = max as f64 / total as f64;
        assert!((0.45..0.6).contains(&share), "hot share {share}");
    }

    #[test]
    fn scenario_builders() {
        let s = Scenario::metronome("m", MetronomeConfig::default(), TrafficSpec::CbrGbps(10.0))
            .with_latency()
            .with_governor(Governor::Ondemand)
            .with_duration(Nanos::from_secs(1));
        assert_eq!(s.net_nice, -20);
        assert_eq!(s.n_net_threads(), 3);
        assert!(s.latency_stride > 0);

        let x = Scenario::xdp("x", 4, TrafficSpec::CbrGbps(10.0));
        assert_eq!(x.n_net_threads(), 4);

        let c = Scenario::const_sleep(
            "c",
            2,
            Nanos::from_micros(50),
            TrafficSpec::CbrPps(10_000.0),
        );
        assert_eq!(c.n_net_threads(), 2);
        assert_eq!(c.system.label(), "const-sleep");
        assert_eq!(Scenario::idle("i").system.label(), "idle");

        // Backend and ring-path selection default to the paper's model
        // and are overridable per scenario.
        assert_eq!(s.exec, ExecBackend::Threads);
        assert_eq!(s.ring_path, RingPath::Spsc);
        let a = Scenario::xdp("a", 2, TrafficSpec::Silent)
            .with_async_backend(2)
            .with_ring_path(RingPath::Mpsc);
        assert_eq!(a.exec, ExecBackend::Async { shards: 2 });
        assert_eq!(a.exec.label(), "async");
        assert_eq!(a.ring_path, RingPath::Mpsc);

        // Generation is single-shard unless asked otherwise.
        assert_eq!(s.gen_shards, 1);
        let g = Scenario::xdp("g", 2, TrafficSpec::Silent).with_gen_shards(4);
        assert_eq!(g.gen_shards, 4);
    }

    #[test]
    #[should_panic(expected = "gen_shards")]
    fn zero_gen_shards_rejected() {
        let _ = Scenario::xdp("g", 2, TrafficSpec::Silent).with_gen_shards(0);
    }

    #[test]
    fn ramp_nominal_rate_follows_schedule() {
        let spec = TrafficSpec::RampUpDown {
            peak_pps: 14e6,
            n_steps: 15,
            step: Nanos::from_secs(2),
        };
        assert!(spec.nominal_pps(Nanos::from_secs(29)) > 13e6);
        assert!(spec.nominal_pps(Nanos::from_secs(1)) < 2e6);
    }
}
