//! The shared simulation world: Rx queues, locks, measurement state.
//!
//! `World` is the `W` type parameter of `metronome_os::OsSim<W>`: every
//! behavior (Metronome thread, static poller, XDP NAPI loop, ferret
//! worker) mutates it from inside its scheduler turns. It owns
//!
//! * one [`SimQueue`] per Rx queue — the hybrid analytic/DES queue: a
//!   counting descriptor ring fed lazily by an arrival process, with
//!   MoonGen-style sampled latency tracking and Tx-batch accounting;
//! * the queue locks (plain owner slots — the simulation is single-threaded,
//!   the CMPXCHG variant lives in `metronome-core::trylock`);
//! * the shared [`AdaptiveController`] (per-thread policy state is owned by
//!   each worker's `metronome_core::engine::MetronomeEngine`);
//! * run-wide measurement collectors (latency reservoir, vacation samples,
//!   ferret completion times).

use crate::calib;
use metronome_core::controller::AdaptiveController;
use metronome_dpdk::ring::RxRingModel;
use metronome_sim::stats::{Histogram, MeanVar, Reservoir};
use metronome_sim::Nanos;
use metronome_traffic::ArrivalProcess;
use std::collections::VecDeque;

/// A latency sample in flight: an accepted packet awaiting Tx flush.
#[derive(Clone, Copy, Debug)]
struct Sample {
    seq: u64,
    arrival: Nanos,
}

/// One Rx queue of the simulated NIC port.
pub struct SimQueue {
    /// Counting descriptor ring (tail-drop at capacity).
    pub ring: RxRingModel,
    arrivals: Box<dyn ArrivalProcess>,
    last_sync: Nanos,
    /// Sequence number of the next accepted packet.
    accepted_seq: u64,
    /// Packets handed to the application (chunk completion).
    processed_seq: u64,
    /// Packets flushed to the wire.
    flushed_seq: u64,
    tx_batch: u64,
    last_flush: Nanos,
    /// Latency sampling stride (0 disables).
    stride: u64,
    waiting: VecDeque<Sample>,
    ts_buf: Vec<Nanos>,
    /// Current lock owner (thread id), if any.
    pub owner: Option<usize>,
    /// When the lock was last released (end of previous busy period).
    pub last_release: Option<Nanos>,
    /// When the current owner acquired the lock.
    pub acquired_at: Nanos,
    /// Vacation preceding the current busy period.
    pub current_vacation: Option<Nanos>,
    /// Mean packets found queued at acquire time (`NV` of Table I).
    pub nv: MeanVar,
    /// Per-queue vacation-period statistics.
    pub vacations: MeanVar,
    /// Per-queue busy-period statistics.
    pub busy_periods: MeanVar,
}

impl SimQueue {
    /// Queue with the given ring size, arrival process, Tx batch and
    /// latency sampling stride (0 = no latency measurement).
    pub fn new(
        ring_size: usize,
        arrivals: Box<dyn ArrivalProcess>,
        tx_batch: u64,
        stride: u64,
    ) -> Self {
        SimQueue {
            ring: RxRingModel::new(ring_size),
            arrivals,
            last_sync: Nanos::ZERO,
            accepted_seq: 0,
            processed_seq: 0,
            flushed_seq: 0,
            tx_batch: tx_batch.max(1),
            last_flush: Nanos::ZERO,
            stride,
            waiting: VecDeque::new(),
            ts_buf: Vec::new(),
            owner: None,
            last_release: None,
            acquired_at: Nanos::ZERO,
            current_vacation: None,
            nv: MeanVar::new(),
            vacations: MeanVar::new(),
            busy_periods: MeanVar::new(),
        }
    }

    /// Pull arrivals up to `now` into the ring (tail-dropping), recording
    /// sampled packets' timestamps.
    pub fn sync(&mut self, now: Nanos) {
        if now <= self.last_sync {
            return;
        }
        self.last_sync = now;
        if self.stride == 0 {
            let n = self.arrivals.drain(now, None);
            self.ring.offer(n);
            self.accepted_seq = self.ring.total_accepted();
            return;
        }
        self.ts_buf.clear();
        let n = self.arrivals.drain(now, Some(&mut self.ts_buf));
        let accepted = self.ring.offer(n);
        for (i, &t) in self.ts_buf[..accepted as usize].iter().enumerate() {
            let seq = self.accepted_seq + i as u64;
            if seq.is_multiple_of(self.stride) {
                self.waiting.push_back(Sample { seq, arrival: t });
            }
        }
        self.accepted_seq += accepted;
        debug_assert_eq!(self.accepted_seq, self.ring.total_accepted());
    }

    /// Take up to `max` packets for processing (after syncing arrivals).
    pub fn take_burst(&mut self, now: Nanos, max: u64) -> u64 {
        self.sync(now);
        self.ring.take(max)
    }

    /// Time of the next pending arrival, if the source has one.
    pub fn peek_next_arrival(&mut self) -> Option<Nanos> {
        self.arrivals.peek_next()
    }

    /// Nominal offered rate right now (pps).
    pub fn offered_rate(&self, now: Nanos) -> f64 {
        self.arrivals.rate_pps(now)
    }

    /// A chunk of `k` packets finished processing at `now`: account Tx
    /// batching and finalize any sampled latencies that flushed.
    /// Returns finalized `(latency)` values via the `out` callback.
    pub fn chunk_processed(
        &mut self,
        now: Nanos,
        k: u64,
        base_latency: Nanos,
        out: &mut dyn FnMut(Nanos),
    ) {
        self.processed_seq += k;
        let pending = self.processed_seq - self.flushed_seq;
        if pending >= self.tx_batch {
            let send = (pending / self.tx_batch) * self.tx_batch;
            self.flushed_seq += send;
            self.last_flush = now;
            self.finalize_flushed(now, base_latency, out);
        }
    }

    /// Force out any partially filled Tx batch (drain timeout or explicit
    /// flush before sleeping).
    pub fn flush_tx(&mut self, now: Nanos, base_latency: Nanos, out: &mut dyn FnMut(Nanos)) {
        if self.processed_seq > self.flushed_seq {
            self.flushed_seq = self.processed_seq;
            self.last_flush = now;
            self.finalize_flushed(now, base_latency, out);
        }
    }

    /// True if a partial batch has been sitting longer than the drain
    /// timeout.
    pub fn tx_stale(&self, now: Nanos) -> bool {
        self.processed_seq > self.flushed_seq
            && now.saturating_sub(self.last_flush) > calib::TX_DRAIN_TIMEOUT
    }

    fn finalize_flushed(&mut self, now: Nanos, base: Nanos, out: &mut dyn FnMut(Nanos)) {
        while let Some(front) = self.waiting.front() {
            if front.seq < self.flushed_seq {
                let s = self.waiting.pop_front().expect("checked front");
                let lat = now.saturating_sub(s.arrival).saturating_add(base);
                out(lat);
            } else {
                break;
            }
        }
    }

    /// Packets currently queued.
    pub fn occupancy(&self) -> u64 {
        self.ring.occupancy()
    }

    /// Packets taken by the application so far.
    pub fn drained_total(&self) -> u64 {
        self.ring.total_drained()
    }

    /// Packets dropped at the ring so far.
    pub fn dropped_total(&self) -> u64 {
        self.ring.total_dropped()
    }

    /// Packets offered so far (accepted + dropped).
    pub fn offered_total(&self) -> u64 {
        self.ring.total_accepted() + self.ring.total_dropped()
    }
}

/// Completion record of a ferret worker.
#[derive(Clone, Copy, Debug)]
pub struct FerretCompletion {
    /// Worker index.
    pub worker: usize,
    /// Completion time.
    pub at: Nanos,
}

/// The shared world mutated by all behaviors.
pub struct World {
    /// Rx queues.
    pub queues: Vec<SimQueue>,
    /// The shared adaptive controller.
    pub controller: AdaptiveController,
    /// Fixed path latency added to every measured sample.
    pub base_latency: Nanos,
    /// End-to-end latency samples (µs), reservoir-sampled.
    pub latency_us: Reservoir,
    /// Cumulative latency histogram (ns): every sample, O(1) insert. The
    /// telemetry sampler differences snapshots of this into per-window
    /// percentiles (the reservoir cannot be windowed — it forgets).
    pub latency_hist: Histogram,
    /// Vacation-period samples in µs (for Fig. 4 / Table I), capped.
    pub vacation_samples_us: Vec<f64>,
    /// Cap on retained vacation samples.
    pub vacation_sample_cap: usize,
    /// Ferret completions.
    pub ferret_done: Vec<FerretCompletion>,
    /// Count of equal-timeout mode (ablation) — threads sleep TS always.
    pub equal_timeouts: bool,
}

impl World {
    /// Build a world over the given queues.
    pub fn new(
        queues: Vec<SimQueue>,
        controller: AdaptiveController,
        base_latency: Nanos,
        seed: u64,
    ) -> Self {
        World {
            queues,
            controller,
            base_latency,
            latency_us: Reservoir::new(20_000, seed ^ 0x1A7E),
            latency_hist: Histogram::latency(),
            vacation_samples_us: Vec::new(),
            vacation_sample_cap: 200_000,
            ferret_done: Vec::new(),
            equal_timeouts: false,
        }
    }

    /// Attempt to acquire queue `q` for thread `tid` (the simulated
    /// trylock). On success records the vacation period that just ended.
    pub fn try_acquire(&mut self, q: usize, tid: usize, now: Nanos) -> bool {
        if self.queues[q].owner.is_some() {
            self.controller.record_busy_try(q);
            return false;
        }
        let queue = &mut self.queues[q];
        queue.owner = Some(tid);
        queue.acquired_at = now;
        queue.current_vacation = queue.last_release.map(|rel| now.saturating_sub(rel));
        self.controller.record_acquired(q);
        // NV: packets waiting at the start of this busy period.
        queue.sync(now);
        let nv = queue.occupancy();
        if queue.current_vacation.is_some() {
            queue.nv.add(nv as f64);
        }
        true
    }

    /// Release queue `q`, feeding the adaptive controller with the
    /// completed renewal cycle.
    pub fn release(&mut self, q: usize, tid: usize, now: Nanos) {
        let queue = &mut self.queues[q];
        debug_assert_eq!(queue.owner, Some(tid), "release by non-owner");
        queue.owner = None;
        let busy = now.saturating_sub(queue.acquired_at);
        if let Some(vac) = queue.current_vacation.take() {
            queue.vacations.add(vac.as_micros_f64());
            queue.busy_periods.add(busy.as_micros_f64());
            if self.vacation_samples_us.len() < self.vacation_sample_cap {
                self.vacation_samples_us.push(vac.as_micros_f64());
            }
            self.controller.record_cycle(q, vac, busy);
        }
        queue.last_release = Some(now);
    }

    /// Record a finalized latency sample.
    pub fn push_latency(&mut self, lat: Nanos) {
        self.latency_us.add(lat.as_micros_f64());
        self.latency_hist.record(lat.as_nanos());
    }

    /// A chunk of `k` packets from queue `q` finished processing: run the
    /// Tx-batch accounting and capture any finalized latency samples.
    pub fn chunk_done(&mut self, q: usize, now: Nanos, k: u64) {
        let base = self.base_latency;
        let latency = &mut self.latency_us;
        let hist = &mut self.latency_hist;
        self.queues[q].chunk_processed(now, k, base, &mut |lat| {
            latency.add(lat.as_micros_f64());
            hist.record(lat.as_nanos());
        });
    }

    /// Force-flush queue `q`'s partial Tx batch.
    pub fn flush_queue_tx(&mut self, q: usize, now: Nanos) {
        let base = self.base_latency;
        let latency = &mut self.latency_us;
        let hist = &mut self.latency_hist;
        self.queues[q].flush_tx(now, base, &mut |lat| {
            latency.add(lat.as_micros_f64());
            hist.record(lat.as_nanos());
        });
    }

    /// Total packets forwarded across queues.
    pub fn total_drained(&self) -> u64 {
        self.queues.iter().map(|q| q.drained_total()).sum()
    }

    /// Total packets dropped across queues.
    pub fn total_dropped(&self) -> u64 {
        self.queues.iter().map(|q| q.dropped_total()).sum()
    }

    /// Total packets offered across queues.
    pub fn total_offered(&self) -> u64 {
        self.queues.iter().map(|q| q.offered_total()).sum()
    }

    /// Loss fraction over the whole run.
    pub fn loss_fraction(&self) -> f64 {
        let offered = self.total_offered();
        if offered == 0 {
            0.0
        } else {
            self.total_dropped() as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_core::MetronomeConfig;
    use metronome_traffic::Cbr;

    fn world_one_queue(pps: f64, stride: u64) -> World {
        let q = SimQueue::new(512, Box::new(Cbr::new(pps, Nanos::ZERO)), 32, stride);
        let ctrl = AdaptiveController::new(MetronomeConfig::default());
        World::new(vec![q], ctrl, calib::BASE_PATH_LATENCY, 42)
    }

    #[test]
    fn sync_fills_ring_and_counts_drops() {
        let mut w = world_one_queue(1e6, 0); // 1 packet per µs
                                             // 600 arrivals > 512 capacity.
        w.queues[0].sync(Nanos::from_micros(600));
        assert_eq!(w.queues[0].occupancy(), 512);
        assert!(w.queues[0].dropped_total() >= 88);
    }

    #[test]
    fn take_burst_drains_fifo_counts() {
        let mut w = world_one_queue(1e6, 0);
        let k = w.queues[0].take_burst(Nanos::from_micros(100), 32);
        assert_eq!(k, 32);
        let k2 = w.queues[0].take_burst(Nanos::from_micros(100), 200);
        // 101 arrivals total (t=0..100), 32 taken.
        assert_eq!(k2, 69);
    }

    #[test]
    fn acquire_release_records_cycle() {
        let mut w = world_one_queue(1e6, 0);
        assert!(w.try_acquire(0, 7, Nanos::from_micros(10)));
        // Second acquire fails and counts a busy try.
        assert!(!w.try_acquire(0, 8, Nanos::from_micros(11)));
        w.release(0, 7, Nanos::from_micros(30));
        // First cycle has no preceding vacation (no last_release yet).
        assert_eq!(w.controller.queue(0).cycles, 0);
        assert!(w.try_acquire(0, 8, Nanos::from_micros(50)));
        w.release(0, 8, Nanos::from_micros(60));
        assert_eq!(w.controller.queue(0).cycles, 1);
        // Vacation was 50-30 = 20 µs.
        assert_eq!(w.queues[0].vacations.count(), 1);
        assert!((w.queues[0].vacations.mean() - 20.0).abs() < 1e-9);
        assert_eq!(w.vacation_samples_us.len(), 1);
        assert_eq!(w.controller.queue(0).busy_tries, 1);
    }

    #[test]
    fn nv_measured_at_acquire() {
        let mut w = world_one_queue(1e6, 0);
        w.try_acquire(0, 1, Nanos::from_micros(10));
        w.release(0, 1, Nanos::from_micros(10));
        // 100 µs vacation at 1 Mpps ⇒ ~100 packets waiting.
        w.try_acquire(0, 2, Nanos::from_micros(110));
        let nv = w.queues[0].nv.mean();
        assert!((nv - 100.0).abs() <= 12.0, "NV {nv}");
    }

    #[test]
    fn latency_samples_flow_through_tx_batching() {
        let mut w = world_one_queue(1e6, 1); // sample every packet
        let mut got = Vec::new();
        let base = w.base_latency;
        // 64 packets arrive by t=63µs; take and process them at t=100µs.
        let k = w.queues[0].take_burst(Nanos::from_micros(100), 32);
        assert_eq!(k, 32);
        w.queues[0].chunk_processed(Nanos::from_micros(102), k, base, &mut |l| got.push(l));
        // Full batch of 32 flushed immediately.
        assert_eq!(got.len(), 32);
        // First packet arrived at t=0, flushed at 102 ⇒ 102 + base.
        let first = got[0];
        assert_eq!(first, Nanos::from_micros(102) + base);
    }

    #[test]
    fn partial_batch_waits_for_flush() {
        let mut w = world_one_queue(1e5, 1); // 1 packet / 10 µs
        let mut got = Vec::new();
        let base = w.base_latency;
        let k = w.queues[0].take_burst(Nanos::from_micros(50), 32);
        assert_eq!(k, 6);
        w.queues[0].chunk_processed(Nanos::from_micros(51), k, base, &mut |l| got.push(l));
        assert!(got.is_empty(), "partial batch must not flush");
        assert!(!w.queues[0].tx_stale(Nanos::from_micros(60)));
        assert!(w.queues[0].tx_stale(Nanos::from_micros(200)));
        w.queues[0].flush_tx(Nanos::from_micros(200), base, &mut |l| got.push(l));
        assert_eq!(got.len(), 6);
        // The t=0 packet was held until 200 µs.
        assert_eq!(got[0], Nanos::from_micros(200) + base);
    }

    #[test]
    fn tx_batch_one_flushes_every_chunk() {
        let q = SimQueue::new(512, Box::new(Cbr::new(1e6, Nanos::ZERO)), 1, 1);
        let ctrl = AdaptiveController::new(MetronomeConfig::default());
        let mut w = World::new(vec![q], ctrl, Nanos::ZERO, 1);
        let mut got = Vec::new();
        let k = w.queues[0].take_burst(Nanos::from_micros(5), 32);
        w.queues[0].chunk_processed(Nanos::from_micros(6), k, Nanos::ZERO, &mut |l| got.push(l));
        assert_eq!(got.len(), k as usize);
    }

    #[test]
    fn loss_fraction_aggregates() {
        let mut w = world_one_queue(1e6, 0);
        w.queues[0].sync(Nanos::from_micros(1000)); // heavy overflow
        assert!(w.loss_fraction() > 0.3);
        assert_eq!(w.total_offered(), 1001);
    }
}
