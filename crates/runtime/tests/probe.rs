use metronome_core::MetronomeConfig;
use metronome_runtime::{run, Scenario, TrafficSpec};
use metronome_sim::Nanos;

#[test]
fn probe_fig4() {
    let mcfg = MetronomeConfig {
        m_threads: 2,
        fixed_ts: Some(Nanos::from_micros(50)),
        t_long: Nanos::from_micros(50),
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome("probe", mcfg, TrafficSpec::CbrGbps(1.0))
        .with_duration(Nanos::from_millis(20))
        .without_daemon()
        .with_seed(1);
    let r = run(&sc);
    println!(
        "samples={} wakes={} tries(q0)={} busy={}",
        r.vacation_samples_us.len(),
        r.total_wakes,
        r.queues[0].total_tries,
        r.queues[0].busy_tries
    );
    println!(
        "first 60 vacation samples: {:?}",
        &r.vacation_samples_us[..r.vacation_samples_us.len().min(60)]
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}
