//! Whole-system smoke tests: the paper's headline shapes must emerge.

use metronome_core::MetronomeConfig;
use metronome_runtime::{run, AppProfile, FerretSpec, Scenario, TrafficSpec};
use metronome_sim::Nanos;

fn line_rate() -> TrafficSpec {
    TrafficSpec::CbrGbps(10.0)
}

#[test]
fn metronome_line_rate_no_loss() {
    let sc = Scenario::metronome("m-line", MetronomeConfig::default(), line_rate())
        .with_duration(Nanos::from_secs(1))
        .without_daemon();
    let r = run(&sc);
    println!(
        "metronome@10G: tput={:.2}Mpps loss={:.4}‰ cpu={:.1}% power={:.1}W V={:.2}µs B={:.2}µs NV={:.1} rho={:.3} busy_tries={:.1}% wakes={}",
        r.throughput_mpps,
        r.loss_permille(),
        r.cpu_total_pct,
        r.power_watts,
        r.mean_vacation_us(),
        r.mean_busy_us(),
        r.mean_nv(),
        r.mean_rho(),
        r.busy_try_fraction * 100.0,
        r.total_wakes
    );
    // Sub-per-mille: the paper's "no substantial packet loss difference
    // compared to standard DPDK". The loaded-system wake-jitter tail puts
    // our noise floor at ~0.1-0.3‰ rather than exactly zero.
    assert!(r.loss < 1e-3, "loss {}", r.loss);
    assert!(
        (13.0..15.0).contains(&r.throughput_mpps),
        "{}",
        r.throughput_mpps
    );
    assert!(r.cpu_total_pct < 100.0, "cpu {}", r.cpu_total_pct);
}

#[test]
fn metronome_low_rate_cpu_floor() {
    let sc = Scenario::metronome(
        "m-0.5g",
        MetronomeConfig::default(),
        TrafficSpec::CbrGbps(0.5),
    )
    .with_duration(Nanos::from_secs(1))
    .without_daemon();
    let r = run(&sc);
    println!(
        "metronome@0.5G: tput={:.3}Mpps loss={:.4}‰ cpu={:.1}% V={:.2}µs rho={:.3}",
        r.throughput_mpps,
        r.loss_permille(),
        r.cpu_total_pct,
        r.mean_vacation_us(),
        r.mean_rho()
    );
    assert!(r.loss < 1e-5);
    assert!(
        (10.0..30.0).contains(&r.cpu_total_pct),
        "cpu {}",
        r.cpu_total_pct
    );
}

#[test]
fn metronome_idle_cpu() {
    let sc = Scenario::metronome("m-idle", MetronomeConfig::default(), TrafficSpec::Silent)
        .with_duration(Nanos::from_secs(1))
        .without_daemon();
    let r = run(&sc);
    println!(
        "metronome@idle: cpu={:.1}% power={:.1}W wakes={}",
        r.cpu_total_pct, r.power_watts, r.total_wakes
    );
    assert!(
        (10.0..30.0).contains(&r.cpu_total_pct),
        "cpu {}",
        r.cpu_total_pct
    );
}

#[test]
fn static_dpdk_always_full_core() {
    for gbps in [10.0, 0.5] {
        let sc = Scenario::static_dpdk("s", 1, TrafficSpec::CbrGbps(gbps))
            .with_duration(Nanos::from_secs(1))
            .without_daemon();
        let r = run(&sc);
        println!(
            "static@{gbps}G: tput={:.2}Mpps loss={:.4}‰ cpu={:.1}% power={:.1}W",
            r.throughput_mpps,
            r.loss_permille(),
            r.cpu_total_pct,
            r.power_watts
        );
        assert!(r.loss < 1e-6);
        assert!(
            (97.0..103.0).contains(&r.cpu_total_pct),
            "cpu {}",
            r.cpu_total_pct
        );
    }
}

#[test]
fn xdp_idle_cpu_zero_but_high_under_load() {
    let idle = run(&Scenario::xdp("x-idle", 4, TrafficSpec::Silent)
        .with_duration(Nanos::from_secs(1))
        .without_daemon());
    println!("xdp@idle: cpu={:.2}%", idle.cpu_total_pct);
    assert!(idle.cpu_total_pct < 0.5, "{}", idle.cpu_total_pct);

    let busy = run(&Scenario::xdp("x-10g", 4, line_rate())
        .with_duration(Nanos::from_secs(1))
        .without_daemon());
    println!(
        "xdp@10G: tput={:.2}Mpps loss={:.4}‰ cpu={:.1}%",
        busy.throughput_mpps,
        busy.loss_permille(),
        busy.cpu_total_pct
    );
    assert!(busy.cpu_total_pct > 100.0, "{}", busy.cpu_total_pct);
}

#[test]
fn latency_ordering_static_beats_metronome() {
    let m = run(
        &Scenario::metronome("m-lat", MetronomeConfig::default(), line_rate())
            .with_duration(Nanos::from_secs(1))
            .with_latency()
            .without_daemon(),
    );
    let s = run(&Scenario::static_dpdk("s-lat", 1, line_rate())
        .with_duration(Nanos::from_secs(1))
        .with_latency()
        .without_daemon());
    let ml = m.latency_us.expect("metronome latency");
    let sl = s.latency_us.expect("static latency");
    println!(
        "latency@10G: metronome mean={:.2}µs med={:.2} static mean={:.2}µs med={:.2}",
        ml.mean, ml.median, sl.mean, sl.median
    );
    assert!(
        sl.mean < ml.mean,
        "static {} !< metronome {}",
        sl.mean,
        ml.mean
    );
    assert!(ml.mean < 60.0, "metronome latency too high: {}", ml.mean);
}

#[test]
fn ferret_sharing_shapes() {
    // Static + ferret on 1 core: throughput halves, ferret ~2-3x slower.
    let st = run(&Scenario::static_dpdk("s-ferret", 1, line_rate())
        .with_duration(Nanos::from_secs(2))
        .with_ferret(FerretSpec {
            n_workers: 1,
            standalone: Nanos::from_millis(600),
            nice: 0,
            on_net_cores: true,
        })
        .without_daemon());
    println!(
        "static+ferret: tput={:.2}Mpps ferret_slowdown={:?}",
        st.throughput_mpps,
        st.ferret_slowdown()
    );
    assert!(st.throughput_mpps < 10.0, "{}", st.throughput_mpps);
    let slow = st.ferret_slowdown().expect("ferret finished");
    assert!(slow > 1.8, "ferret slowdown {slow}");

    // Metronome (nice -20) + ferret on 3 cores: line rate preserved,
    // ferret modestly slower.
    let mt = run(
        &Scenario::metronome("m-ferret", MetronomeConfig::default(), line_rate())
            .with_duration(Nanos::from_secs(2))
            .with_ferret(FerretSpec {
                n_workers: 3,
                standalone: Nanos::from_millis(600),
                nice: 19,
                on_net_cores: true,
            })
            .without_daemon(),
    );
    println!(
        "metronome+ferret: tput={:.2}Mpps loss={:.4}‰ ferret_slowdown={:?}",
        mt.throughput_mpps,
        mt.loss_permille(),
        mt.ferret_slowdown()
    );
    assert!(mt.loss < 0.01, "loss {}", mt.loss);
    let mslow = mt.ferret_slowdown().expect("ferret finished");
    assert!(mslow < slow, "metronome {mslow} !< static {slow}");
}

#[test]
fn ipsec_saturates_at_paper_ceiling() {
    let sc = Scenario::metronome(
        "ipsec",
        MetronomeConfig::default(),
        TrafficSpec::CbrPps(14.88e6),
    )
    .with_app(AppProfile::ipsec())
    .with_duration(Nanos::from_secs(1))
    .without_daemon();
    let r = run(&sc);
    println!("ipsec@line-offered: tput={:.2}Mpps", r.throughput_mpps);
    assert!(
        (5.0..6.2).contains(&r.throughput_mpps),
        "IPsec ceiling {}",
        r.throughput_mpps
    );
}

#[test]
fn adaptation_series_tracks_ramp() {
    let sc = Scenario::metronome(
        "ramp",
        MetronomeConfig::default(),
        TrafficSpec::RampUpDown {
            peak_pps: 14e6,
            n_steps: 7,
            step: Nanos::from_millis(500),
        },
    )
    .with_duration(Nanos::from_secs(7))
    .with_series(Nanos::from_millis(250))
    .without_daemon();
    let r = run(&sc);
    assert!(!r.series.is_empty());
    for p in &r.series {
        println!(
            "t={:.2}s true={:.2}Mpps est={:.2}Mpps ts={:.1}µs rho={:.3} cpu={:.1}%",
            p.t_s, p.true_mpps, p.est_mpps, p.ts_us, p.rho, p.cpu_pct
        );
    }
    // At the peak (t≈3.5s) the estimate must be close to the true rate and
    // TS near V̄; near the start TS near M·V̄.
    let peak = r
        .series
        .iter()
        .find(|p| (p.t_s - 3.5).abs() < 0.13)
        .expect("peak sample");
    assert!(
        (peak.est_mpps - peak.true_mpps).abs() / peak.true_mpps < 0.25,
        "estimate {} vs true {}",
        peak.est_mpps,
        peak.true_mpps
    );
    let early = &r.series[1];
    assert!(early.ts_us > peak.ts_us, "TS must shrink with load");
}
