//! The event queue at the heart of the discrete-event simulator.
//!
//! Determinism contract: two events scheduled for the same instant pop in
//! the order they were scheduled (FIFO tie-break via a monotone sequence
//! number). This makes whole-system runs bit-reproducible given a seed,
//! which the experiment harness and the regression tests rely on.
//!
//! Events are opaque to the queue; the system simulations define their own
//! event enums. Scheduled events can be cancelled by id — the scheduler
//! model uses this to retract work-completion events on preemption and the
//! NIC model to retract ring-overflow deadlines when a thread drains the
//! queue first.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// An id that will never be issued; handy as an "empty slot" marker.
    pub const NONE: EventId = EventId(u64::MAX);

    /// True if this is the `NONE` sentinel.
    pub fn is_none(self) -> bool {
        self == EventId::NONE
    }
}

struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// breaking ties by insertion order.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events with stable FIFO tie-breaking,
/// lazy cancellation, and a monotone clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: Nanos,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: Nanos::ZERO,
            popped: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total number of events delivered so far (diagnostics).
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (including cancelled-but-unpopped).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.len() == self.cancelled.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// clamps such events to `now` (they fire "immediately", preserving
    /// order), and debug builds assert.
    pub fn schedule(&mut self, at: Nanos, event: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule(at, event)
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired. Cancelling an already
    /// delivered (or already cancelled) event is a no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.is_none() || id.0 >= self.next_seq {
            return false;
        }
        // An id is live iff it hasn't been popped; we can't know cheaply, so
        // we insert into the tombstone set and let pop() drop it. Inserting
        // a dead id is harmless (bounded by heap drain).
        self.cancelled.insert(id.0)
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.drop_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.drop_cancelled();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    fn drop_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), "c");
        q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Nanos(5), i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.schedule(Nanos(10), ());
        q.schedule(Nanos(25), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(10));
        q.pop();
        assert_eq!(q.now(), Nanos(10));
        q.pop();
        assert_eq!(q.now(), Nanos(25));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), 1);
        q.pop();
        q.schedule_in(Nanos(50), 2);
        assert_eq!(q.pop(), Some((Nanos(150), 2)));
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
    }

    #[test]
    fn cancel_twice_and_after_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        let b = q.schedule(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        // b already fired: cancelling is a harmless no-op... it returns true
        // only for never-popped ids; popped ids enter the tombstone set but
        // never match. We only guarantee no crash and no effect.
        q.cancel(b);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_none_sentinel() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId::NONE));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos(20)));
    }

    #[test]
    fn is_empty_accounts_for_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(10), "a");
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn delivered_counts() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(1), ());
        q.schedule(Nanos(2), ());
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_past_asserts_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), ());
        q.pop();
        q.schedule(Nanos(50), ());
    }
}
