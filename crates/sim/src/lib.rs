//! # metronome-sim — deterministic discrete-event simulation engine
//!
//! Foundation crate for the Metronome (CoNEXT 2020) reproduction. Everything
//! the higher layers need to run *reproducible* whole-system experiments
//! lives here:
//!
//! * [`time::Nanos`] / [`time::Cycles`] — integer virtual time and CPU-cycle
//!   accounting (cycles ↔ time conversion is frequency-aware so governor
//!   models work).
//! * [`event::EventQueue`] — the event heap with deterministic FIFO
//!   tie-breaking and O(log n) cancellation.
//! * [`rng::Rng`] — xoshiro256** with SplitMix64 seeding and independent
//!   sub-streams per component.
//! * [`stats`] — the estimators every experiment reports through: Welford
//!   mean/variance, EWMA (paper eq. (11)), time-weighted means, log-linear
//!   latency histograms, reservoir-sampled boxplots, and downsampled series.
//!
//! ## Determinism contract
//!
//! Given the same seed and configuration, every simulation built on this
//! crate produces bit-identical results on every platform: integer time, a
//! stable event ordering, and self-contained PRNG streams. The experiment
//! harness and the regression test suite depend on this.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue};
pub use rng::Rng;
pub use time::{CoarseClock, Cycles, Nanos};
