//! Deterministic pseudo-random number generation.
//!
//! The simulator needs randomness that is (a) fast, (b) reproducible across
//! runs and platforms given a seed, and (c) splittable into independent
//! streams so that, e.g., the arrival process and the scheduler jitter never
//! perturb each other's draws when one component is reconfigured.
//!
//! We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64 —
//! the same construction DPDK's `rte_random` uses a cousin of (the paper's
//! Appendix II notes Metronome leans on DPDK's "Thread-safe High Performance
//! Pseudo-random Number Generation" for the multiqueue backup-thread queue
//! pick). Implementing it here keeps the whole repo dependency-free on the
//! `rand` facade whose API shifted across 0.8→0.10.

/// xoshiro256** generator.
///
/// Not cryptographic. Passes BigCrush; period 2^256 − 1.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) is valid: SplitMix64 expands it into a
    /// full-entropy 256-bit state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child stream.
    ///
    /// Streams derived with distinct tags from the same parent are
    /// statistically independent; deriving with the same tag twice yields
    /// identical streams (useful for reproducing a component in isolation).
    pub fn stream(&self, tag: u64) -> Rng {
        // Mix the tag through SplitMix64 together with the parent state so
        // that streams with adjacent tags are decorrelated.
        let mut sm = self.s[0] ^ tag.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to \[0,1\]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times and rare-interference gaps.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse transform; (1 - f64()) avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller (single value; the pair's twin is
    /// discarded for simplicity — draws are not on a hot path).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Log-normal with the given *location/scale of the underlying normal*.
    ///
    /// Heavy-tailed; models occasional long OS scheduling delays.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let root = Rng::new(7);
        let mut s1a = root.stream(1);
        let mut s1b = root.stream(1);
        let mut s2 = root.stream(2);
        assert_eq!(s1a.next_u64(), s1b.next_u64());
        // Practically certain to differ.
        assert_ne!(s1a.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = Rng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Rng::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            let x = r.range_inclusive(10, 13);
            assert!((10..=13).contains(&x));
            lo_seen |= x == 10;
            hi_seen |= x == 13;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_inclusive(9, 9), 9);
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(6);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let avg = sum / n as f64;
        assert!(
            (avg - mean).abs() < 0.1,
            "sample mean {avg} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_close() {
        let mut r = Rng::new(8);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal(2.0, 3.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(10);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng::new(11);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }
}
