//! Exponentially weighted moving average.
//!
//! The paper's adaptation loop (§IV-D, eq. (11)) estimates the load as
//! `ρ(i) = (1-α)·ρ(i-1) + α·B(i)/(V(i)+B(i))` — a plain EWMA over the
//! per-cycle busy fraction. This type is that estimator, reused anywhere a
//! smoothed scalar is needed (governor utilization sampling, rate display).

/// EWMA with smoothing factor `alpha` in `(0, 1]`.
///
/// Larger `alpha` tracks faster; smaller `alpha` smooths harder. The first
/// observation initializes the average directly (no zero-bias warmup).
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an estimator with the given smoothing factor.
    ///
    /// # Panics
    /// If `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Incorporate an observation and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * x,
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `default` if nothing was observed yet.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Current average, if any observation was made.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Discard state (back to "no observations").
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.125);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(8.0), 8.0);
        assert_eq!(e.value(), Some(8.0));
    }

    #[test]
    fn recurrence_matches_paper_eq11() {
        // ρ(i) = (1-α)ρ(i-1) + α·x with α = 0.25
        let mut e = Ewma::new(0.25);
        e.update(1.0);
        let v = e.update(0.0); // 0.75*1 + 0.25*0
        assert!((v - 0.75).abs() < 1e-12);
        let v = e.update(1.0); // 0.75*0.75 + 0.25
        assert!((v - 0.8125).abs() < 1e-12);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.1);
        for _ in 0..500 {
            e.update(3.5);
        }
        assert!((e.value().unwrap() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        e.update(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn value_or_default() {
        let e = Ewma::new(0.5);
        assert_eq!(e.value_or(0.123), 0.123);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.update(1.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
