//! Log-linear histogram for latency-style positive quantities.
//!
//! HdrHistogram-like layout: values are bucketed into power-of-two ranges,
//! each split into `sub_buckets` linear slots, giving a bounded relative
//! error (≈ 1/sub_buckets) over many orders of magnitude with O(1) insert
//! and a few KiB of memory. Latencies in the simulator span ~100 ns (wire
//! time) to ~1 s (pathological stalls), which a linear histogram cannot
//! cover affordably.

use crate::stats::{Boxplot, MeanVar};

/// Log-linear histogram over `u64` values (typically nanoseconds).
#[derive(Clone, Debug)]
pub struct Histogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    /// Welford accumulator for the variance: stable even for large,
    /// tightly clustered values, where sum-of-squares cancellation would
    /// destroy all precision.
    moments: MeanVar,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create a histogram with 2^`sub_bits` linear sub-buckets per octave.
    ///
    /// `sub_bits = 5` (32 sub-buckets, ≈3% relative error) is plenty for
    /// latency reporting; `sub_bits = 7` gives ≈0.8%.
    pub fn new(sub_bits: u32) -> Self {
        assert!((1..=16).contains(&sub_bits), "sub_bits in 1..=16");
        // 64 octaves × sub_buckets is the worst case; index() caps octaves.
        let n = (64 - sub_bits as usize + 1) * (1 << sub_bits);
        Histogram {
            sub_bits,
            counts: vec![0; n],
            total: 0,
            sum: 0,
            moments: MeanVar::new(),
            min: u64::MAX,
            max: 0,
        }
    }

    /// Default configuration for latency distributions (≈3% error).
    pub fn latency() -> Self {
        Histogram::new(5)
    }

    fn index(&self, value: u64) -> usize {
        let sub = self.sub_bits;
        if value < (1 << sub) {
            // First octave is exact.
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let octave = (msb - sub + 1) as usize;
        let within = ((value >> (msb - sub)) - (1 << sub)) as usize;
        octave * (1 << sub) + within
    }

    /// Lowest value that maps to the bucket with the given index
    /// (the inverse of `index`, used for quantile reconstruction).
    fn bucket_low(&self, idx: usize) -> u64 {
        let sub = self.sub_bits as usize;
        let per = 1usize << sub;
        if idx < per {
            return idx as u64;
        }
        let octave = idx / per;
        let within = idx % per;
        // Octave o >= 1 covers [2^(sub+o-1), 2^(sub+o)), each slot spanning
        // 2^(o-1) values.
        let base = 1u64 << (sub + octave - 1);
        base + (within as u64) * (1u64 << (octave - 1))
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self.index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.moments.add(value as f64);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index(value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.moments.add_n(value as f64, n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of recorded values (what a Prometheus `_sum` sample
    /// reports; `u128` so nanosecond totals cannot overflow).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact minimum (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (bucket lower bound; relative error bounded
    /// by the sub-bucket resolution).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Clamp to the true extremes for the outer quantiles.
                let v = self.bucket_low(i);
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median shortcut.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Sample variance of recorded values (0 with fewer than two
    /// observations). Welford-accumulated, so it stays accurate even for
    /// large nanosecond values packed close together — the regime where
    /// the naive `E[X²] − mean²` form cancels catastrophically.
    pub fn variance(&self) -> f64 {
        self.moments.variance()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.moments.std_dev()
    }

    /// Five-number summary of the recorded distribution, every field
    /// multiplied by `scale` (e.g. `1e-3` to report nanosecond records in
    /// microseconds). Quartiles carry the histogram's bucket resolution;
    /// min/max/mean are exact, std-dev is Welford-accurate. `None` if
    /// nothing was recorded.
    pub fn boxplot_scaled(&self, scale: f64) -> Option<Boxplot> {
        if self.total == 0 {
            return None;
        }
        Some(Boxplot {
            min: self.min as f64 * scale,
            q1: self.quantile(0.25)? as f64 * scale,
            median: self.quantile(0.50)? as f64 * scale,
            q3: self.quantile(0.75)? as f64 * scale,
            max: self.max as f64 * scale,
            mean: self.mean() * scale,
            std_dev: self.std_dev() * scale,
            count: self.total as usize,
        })
    }

    /// Merge another histogram with identical configuration.
    ///
    /// # Panics
    /// If the two histograms were built with different `sub_bits`.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "incompatible histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.moments.merge(&other.moments);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate non-empty buckets as `(bucket_low, count)`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (self.bucket_low(i), c))
    }

    /// Iterate non-empty buckets as `(low, high_exclusive, count)` — the
    /// half-open value range each bucket covers, for exporters that need
    /// upper bounds (e.g. Prometheus `le` labels).
    pub fn iter_spans(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (self.bucket_low(i), self.bucket_low(i + 1), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new(5);
        for v in 0..32 {
            h.record(v);
        }
        // First octave is exact: every value its own bucket.
        let buckets: Vec<_> = h.iter_buckets().collect();
        assert_eq!(buckets.len(), 32);
        for (i, (low, count)) in buckets.iter().enumerate() {
            assert_eq!(*low, i as u64);
            assert_eq!(*count, 1);
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::latency();
        for v in [100, 200, 300, 1_000_000] {
            h.record(v);
        }
        assert!((h.mean() - 250_150.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new(5);
        // Values across several octaves.
        let vals: Vec<u64> = (0..10_000).map(|i| 50 + i * 37).collect();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = sorted[((q * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q).unwrap();
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.05, "q={q}: exact {exact} approx {approx} rel {rel}");
        }
    }

    #[test]
    fn min_max_exact() {
        let mut h = Histogram::latency();
        h.record(17);
        h.record(93_000_001);
        assert_eq!(h.min(), Some(17));
        assert_eq!(h.max(), Some(93_000_001));
        assert_eq!(h.quantile(0.0), Some(17));
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new(5);
        let mut b = Histogram::new(5);
        a.record_n(1234, 7);
        for _ in 0..7 {
            b.record(1234);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn variance_matches_two_pass() {
        let mut h = Histogram::latency();
        let vals = [120u64, 340, 560, 780, 10_000];
        for &v in &vals {
            h.record(v);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<u64>() as f64 / n;
        let var = vals
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / (n - 1.0);
        assert!((h.variance() - var).abs() / var < 1e-12, "{}", h.variance());
        assert!((h.std_dev() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn variance_survives_large_clustered_values() {
        // One-second-scale latencies one nanosecond apart: the naive
        // E[X²] − mean² form loses everything to cancellation here (the
        // ulp of 1e18 is ~128), Welford does not.
        let mut h = Histogram::latency();
        h.record(1_000_000_000);
        h.record(1_000_000_001);
        assert!((h.variance() - 0.5).abs() < 1e-3, "{}", h.variance());
        // Same via the O(1) bulk path.
        let mut b = Histogram::latency();
        b.record_n(1_000_000_000, 500);
        b.record_n(1_000_000_001, 500);
        let expect = 0.25 * 1000.0 / 999.0;
        assert!((b.variance() - expect).abs() < 1e-3, "{}", b.variance());
    }

    #[test]
    fn variance_degenerate_cases() {
        let mut h = Histogram::latency();
        assert_eq!(h.variance(), 0.0);
        h.record(500);
        assert_eq!(h.variance(), 0.0); // one sample
        h.record_n(500, 9);
        assert_eq!(h.variance(), 0.0); // identical samples
    }

    #[test]
    fn boxplot_scaled_summarizes() {
        let mut h = Histogram::latency();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1..=1000 µs in ns
        }
        let bp = h.boxplot_scaled(1e-3).unwrap();
        assert_eq!(bp.count, 1000);
        assert!((bp.min - 1.0).abs() < 1e-9);
        assert!((bp.max - 1000.0).abs() < 1e-9);
        assert!((bp.median - 500.0).abs() / 500.0 < 0.05);
        assert!(bp.q1 <= bp.median && bp.median <= bp.q3);
        assert!((bp.mean - 500.5).abs() < 1e-6);
        assert!(Histogram::latency().boxplot_scaled(1.0).is_none());
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new(5);
        let mut b = Histogram::new(5);
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_mismatched_config() {
        let mut a = Histogram::new(5);
        let b = Histogram::new(6);
        a.merge(&b);
    }

    #[test]
    fn bucket_low_is_monotone() {
        let h = Histogram::new(5);
        let mut prev = 0;
        for i in 0..500 {
            let low = h.bucket_low(i);
            assert!(low >= prev, "bucket {i}: {low} < {prev}");
            prev = low;
        }
    }

    #[test]
    fn index_bucket_low_consistent() {
        let h = Histogram::new(5);
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 65_535, 1 << 30] {
            let idx = h.index(v);
            let low = h.bucket_low(idx);
            assert!(low <= v, "v={v} idx={idx} low={low}");
            // Next bucket must start above v.
            let next_low = h.bucket_low(idx + 1);
            assert!(next_low > v, "v={v} idx={idx} next_low={next_low}");
        }
    }
}
