//! Online mean/variance (Welford's algorithm) with min/max tracking.

/// Numerically stable single-pass estimator of mean, variance, min and max.
///
/// Welford's update keeps the running mean and the sum of squared deviations
/// (`m2`); variance follows without catastrophic cancellation even when the
/// values are large (nanosecond timestamps) and tightly clustered.
#[derive(Clone, Debug, Default)]
pub struct MeanVar {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// Fresh, empty estimator.
    pub fn new() -> Self {
        MeanVar {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Incorporate `n` identical observations of `x` in O(1) (Chan merge
    /// with a point mass: a degenerate distribution has zero `m2`).
    pub fn add_n(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.count = n;
            self.mean = x;
            self.m2 = 0.0;
            self.min = x;
            self.max = x;
            return;
        }
        let n1 = self.count as f64;
        let n2 = n as f64;
        let delta = x - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += delta * delta * n1 * n2 / total;
        self.count += n;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another estimator into this one (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &MeanVar) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_n_matches_looped_adds() {
        let mut bulk = MeanVar::new();
        let mut looped = MeanVar::new();
        for (x, n) in [(10.0, 3u64), (250.5, 1), (1e9, 7), (3.25, 0)] {
            bulk.add_n(x, n);
            for _ in 0..n {
                looped.add(x);
            }
        }
        assert_eq!(bulk.count(), looped.count());
        assert!((bulk.mean() - looped.mean()).abs() < 1e-9 * looped.mean());
        assert!((bulk.variance() - looped.variance()).abs() < 1e-6 * looped.variance());
        assert_eq!(bulk.min(), looped.min());
        assert_eq!(bulk.max(), looped.max());
    }

    #[test]
    fn add_n_into_empty_is_a_point_mass() {
        let mut mv = MeanVar::new();
        mv.add_n(42.0, 5);
        assert_eq!(mv.count(), 5);
        assert_eq!(mv.mean(), 42.0);
        assert_eq!(mv.variance(), 0.0);
        assert_eq!(mv.min(), Some(42.0));
        assert_eq!(mv.max(), Some(42.0));
    }

    #[test]
    fn empty_is_benign() {
        let mv = MeanVar::new();
        assert_eq!(mv.count(), 0);
        assert_eq!(mv.mean(), 0.0);
        assert_eq!(mv.variance(), 0.0);
        assert_eq!(mv.min(), None);
        assert_eq!(mv.max(), None);
    }

    #[test]
    fn matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut mv = MeanVar::new();
        for &x in &xs {
            mv.add(x);
        }
        assert!((mv.mean() - 5.0).abs() < 1e-12);
        // Two-pass unbiased variance: sum((x-5)^2)/(n-1) = 32/7.
        assert!((mv.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mv.min(), Some(2.0));
        assert_eq!(mv.max(), Some(9.0));
        assert!((mv.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = MeanVar::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = MeanVar::new();
        let mut right = MeanVar::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = MeanVar::new();
        a.add(1.0);
        a.add(3.0);
        let b = MeanVar::new();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);

        let mut c = MeanVar::new();
        c.merge(&a);
        assert_eq!(c.count(), 2);
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offsets() {
        // 1e9-offset values with tiny variance: naive sum-of-squares dies here.
        let mut mv = MeanVar::new();
        for i in 0..1000 {
            mv.add(1e9 + (i % 2) as f64);
        }
        assert!((mv.mean() - (1e9 + 0.5)).abs() < 1e-3);
        assert!((mv.variance() - 0.2502502502).abs() < 1e-3);
    }
}
