//! Measurement utilities shared by every experiment.
//!
//! The paper reports means, variances, boxplots (Figs. 1, 8, 10), empirical
//! PDFs (Fig. 4), time series (Fig. 9) and per-mille loss rates (Table I).
//! This module provides the estimators those reports need, all pure-Rust,
//! deterministic, and cheap enough to run inline with the simulation:
//!
//! * [`MeanVar`] — Welford online mean/variance with min/max.
//! * [`Ewma`] — exponentially weighted moving average (the paper's eq. (11)
//!   load estimator uses exactly this shape).
//! * [`TimeWeighted`] — time-weighted average of piecewise-constant signals
//!   (CPU utilization, queue occupancy, core frequency).
//! * [`Histogram`] — log-linear latency histogram with quantile queries.
//! * [`Reservoir`] — uniform reservoir sample for exact small-sample
//!   percentiles (boxplots).
//! * [`Boxplot`] — five-number summary computed from samples.
//! * [`Series`] — downsampled (time, value) recorder for time-series plots.

mod ewma;
mod histogram;
mod meanvar;
mod reservoir;
mod series;
mod timeweighted;

pub use ewma::Ewma;
pub use histogram::Histogram;
pub use meanvar::MeanVar;
pub use reservoir::{Boxplot, Reservoir};
pub use series::Series;
pub use timeweighted::TimeWeighted;

/// Compute the `q`-quantile (0 ≤ q ≤ 1) of a *sorted* slice by linear
/// interpolation (type-7 estimator, the numpy/R default).
///
/// Returns `None` on an empty slice. Panics in debug builds if the slice is
/// not sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "not sorted");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_empty() {
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_single() {
        assert_eq!(quantile_sorted(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile_sorted(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&v, 1.0), Some(4.0));
        assert_eq!(quantile_sorted(&v, 0.5), Some(2.5));
        assert!((quantile_sorted(&v, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_q() {
        let v = [1.0, 2.0];
        assert_eq!(quantile_sorted(&v, -3.0), Some(1.0));
        assert_eq!(quantile_sorted(&v, 9.0), Some(2.0));
    }
}
