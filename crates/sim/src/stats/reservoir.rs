//! Reservoir sampling and boxplot summaries.
//!
//! Latency boxplots (paper Figs. 1, 8, 10) need order statistics. Keeping
//! every sample of a minute-long line-rate run would cost gigabytes, so we
//! keep a uniform reservoir (Vitter's Algorithm R) whose percentiles are
//! unbiased estimates of the population's.

use super::quantile_sorted;
use crate::rng::Rng;

/// Fixed-capacity uniform sample of a stream.
#[derive(Clone, Debug)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    samples: Vec<f64>,
    rng: Rng,
}

impl Reservoir {
    /// Reservoir holding at most `cap` samples, using the given seed for the
    /// replacement draws (deterministic across runs).
    pub fn new(cap: usize, seed: u64) -> Self {
        assert!(cap > 0, "capacity must be positive");
        Reservoir {
            cap,
            seen: 0,
            samples: Vec::with_capacity(cap.min(4096)),
            rng: Rng::new(seed),
        }
    }

    /// Offer one observation to the reservoir.
    pub fn add(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            // Replace a random slot with probability cap/seen.
            let j = self.rng.below(self.seen);
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total observations offered (not the retained count).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was offered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Retained samples (unsorted, in reservoir order).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Five-number summary plus mean of the retained sample.
    pub fn boxplot(&self) -> Option<Boxplot> {
        Boxplot::from_samples(&self.samples)
    }
}

/// Five-number summary (Tukey boxplot) of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Boxplot {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of samples summarized.
    pub count: usize,
}

impl Boxplot {
    /// Summarize a sample (need not be sorted). Returns `None` if empty.
    pub fn from_samples(samples: &[f64]) -> Option<Boxplot> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        };
        Some(Boxplot {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25).unwrap(),
            median: quantile_sorted(&sorted, 0.50).unwrap(),
            q3: quantile_sorted(&sorted, 0.75).unwrap(),
            max: sorted[n - 1],
            mean,
            std_dev: var.sqrt(),
            count: n,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Lower Tukey whisker (lowest sample ≥ q1 − 1.5·IQR approximated as the
    /// fence itself, clamped to min).
    pub fn whisker_low(&self) -> f64 {
        (self.q1 - 1.5 * self.iqr()).max(self.min)
    }

    /// Upper Tukey whisker.
    pub fn whisker_high(&self) -> f64 {
        (self.q3 + 1.5 * self.iqr()).min(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Reservoir::new(100, 1);
        for i in 0..50 {
            r.add(i as f64);
        }
        assert_eq!(r.len(), 50);
        assert_eq!(r.seen(), 50);
        let mut s = r.samples().to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(s, (0..50).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn caps_at_capacity() {
        let mut r = Reservoir::new(10, 2);
        for i in 0..10_000 {
            r.add(i as f64);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Mean of a uniform sample of 0..100k should be ≈50k.
        let mut r = Reservoir::new(2_000, 3);
        let n = 100_000;
        for i in 0..n {
            r.add(i as f64);
        }
        let mean = r.samples().iter().sum::<f64>() / r.len() as f64;
        let expected = (n - 1) as f64 / 2.0;
        // Std error ≈ (n/sqrt(12)) / sqrt(2000) ≈ 645; allow 4 sigma.
        assert!(
            (mean - expected).abs() < 3_000.0,
            "reservoir mean {mean} vs {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Reservoir::new(16, 42);
        let mut b = Reservoir::new(16, 42);
        for i in 0..1_000 {
            a.add(i as f64);
            b.add(i as f64);
        }
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn boxplot_of_known_sample() {
        let bp = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(bp.min, 1.0);
        assert_eq!(bp.median, 3.0);
        assert_eq!(bp.max, 5.0);
        assert_eq!(bp.q1, 2.0);
        assert_eq!(bp.q3, 4.0);
        assert_eq!(bp.mean, 3.0);
        assert_eq!(bp.count, 5);
        assert!((bp.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn boxplot_empty_is_none() {
        assert!(Boxplot::from_samples(&[]).is_none());
    }

    #[test]
    fn boxplot_single_sample() {
        let bp = Boxplot::from_samples(&[7.5]).unwrap();
        assert_eq!(bp.min, 7.5);
        assert_eq!(bp.max, 7.5);
        assert_eq!(bp.median, 7.5);
        assert_eq!(bp.std_dev, 0.0);
    }

    #[test]
    fn whiskers_clamped_to_extremes() {
        let bp = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert!(bp.whisker_high() <= bp.max);
        assert!(bp.whisker_low() >= bp.min);
    }
}
