//! Downsampled time-series recorder.
//!
//! Fig. 9 of the paper plots the estimated rate, `TS`, CPU usage and `ρ`
//! against wall time over a 60-second ramp. [`Series`] records (time, value)
//! points at a caller-chosen minimum spacing, so a second-long experiment at
//! microsecond event granularity still yields a plottable few hundred points.

use crate::time::Nanos;

/// Append-only (time, value) series with a minimum inter-sample spacing.
#[derive(Clone, Debug)]
pub struct Series {
    name: String,
    min_gap: Nanos,
    points: Vec<(Nanos, f64)>,
}

impl Series {
    /// New series; points arriving closer than `min_gap` after the previous
    /// retained point are dropped (the most recent value can be flushed
    /// explicitly with [`Series::force`]).
    pub fn new(name: impl Into<String>, min_gap: Nanos) -> Self {
        Series {
            name: name.into(),
            min_gap,
            points: Vec::new(),
        }
    }

    /// Series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Offer a point; retained only if at least `min_gap` after the last.
    pub fn push(&mut self, t: Nanos, v: f64) {
        match self.points.last() {
            Some(&(last_t, _)) if t < last_t.saturating_add(self.min_gap) => {}
            _ => self.points.push((t, v)),
        }
    }

    /// Record a point unconditionally (e.g. the final value of a run).
    pub fn force(&mut self, t: Nanos, v: f64) {
        self.points.push((t, v));
    }

    /// Retained points.
    pub fn points(&self) -> &[(Nanos, f64)] {
        &self.points
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last retained value, if any.
    pub fn last(&self) -> Option<(Nanos, f64)> {
        self.points.last().copied()
    }

    /// Render as CSV lines `seconds,value` (no header).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 16);
        for (t, v) in &self.points {
            out.push_str(&format!("{:.6},{v}\n", t.as_secs_f64()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_min_gap() {
        let mut s = Series::new("cpu", Nanos::from_millis(10));
        s.push(Nanos::ZERO, 1.0);
        s.push(Nanos::from_millis(5), 2.0); // too close, dropped
        s.push(Nanos::from_millis(10), 3.0); // exactly the gap, kept
        s.push(Nanos::from_millis(12), 4.0); // dropped
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[1], (Nanos::from_millis(10), 3.0));
    }

    #[test]
    fn force_bypasses_gap() {
        let mut s = Series::new("x", Nanos::from_secs(1));
        s.push(Nanos::ZERO, 1.0);
        s.force(Nanos(1), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_gap_keeps_all() {
        let mut s = Series::new("x", Nanos::ZERO);
        for i in 0..10 {
            s.push(Nanos(i), i as f64);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn csv_format() {
        let mut s = Series::new("x", Nanos::ZERO);
        s.push(Nanos::from_secs(1), 0.5);
        assert_eq!(s.to_csv(), "1.000000,0.5\n");
    }

    #[test]
    fn last_and_empty() {
        let mut s = Series::new("x", Nanos::ZERO);
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        s.push(Nanos(5), 9.0);
        assert_eq!(s.last(), Some((Nanos(5), 9.0)));
    }
}
