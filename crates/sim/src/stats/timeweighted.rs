//! Time-weighted averaging of piecewise-constant signals.

use crate::time::Nanos;

/// Average of a signal that holds a value until explicitly changed.
///
/// Used for CPU utilization (a core is either busy or idle), queue depth,
/// active thread counts, and core frequency: `set(t, v)` records that the
/// signal takes value `v` from time `t` onward, and [`TimeWeighted::mean_until`]
/// integrates the step function over the observed window.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    start: Option<Nanos>,
    last_t: Nanos,
    last_v: f64,
    integral: f64, // ∫ v dt in (value · seconds)
    min: f64,
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Fresh accumulator with no observations.
    pub fn new() -> Self {
        TimeWeighted {
            start: None,
            last_t: Nanos::ZERO,
            last_v: 0.0,
            integral: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record that the signal takes value `v` starting at time `t`.
    ///
    /// Times must be non-decreasing; out-of-order updates panic in debug
    /// builds and are clamped in release builds.
    pub fn set(&mut self, t: Nanos, v: f64) {
        match self.start {
            None => {
                self.start = Some(t);
                self.last_t = t;
                self.last_v = v;
            }
            Some(_) => {
                debug_assert!(t >= self.last_t, "time-weighted update out of order");
                let t = t.max(self.last_t);
                self.integral += self.last_v * (t - self.last_t).as_secs_f64();
                self.last_t = t;
                self.last_v = v;
            }
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Close the window at time `t` and return the time-weighted mean.
    ///
    /// Returns 0 for an empty or zero-length window. The accumulator remains
    /// usable; calling `mean_until` repeatedly with increasing `t` is fine.
    pub fn mean_until(&self, t: Nanos) -> f64 {
        let Some(start) = self.start else {
            return 0.0;
        };
        let t = t.max(self.last_t);
        let span = (t - start).as_secs_f64();
        if span <= 0.0 {
            return self.last_v;
        }
        let total = self.integral + self.last_v * (t - self.last_t).as_secs_f64();
        total / span
    }

    /// Current (latest) value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Smallest value ever set (`None` before the first `set`).
    pub fn min(&self) -> Option<f64> {
        self.start.map(|_| self.min)
    }

    /// Largest value ever set (`None` before the first `set`).
    pub fn max(&self) -> Option<f64> {
        self.start.map(|_| self.max)
    }

    /// Integral of the signal in value·seconds up to the last `set`.
    pub fn integral_so_far(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mean_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(Nanos::from_secs(1)), 0.0);
    }

    #[test]
    fn constant_signal() {
        let mut tw = TimeWeighted::new();
        tw.set(Nanos::ZERO, 5.0);
        assert!((tw.mean_until(Nanos::from_secs(10)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn square_wave_half_duty() {
        let mut tw = TimeWeighted::new();
        // 1 for [0,1)s, 0 for [1,2)s, 1 for [2,3)s, 0 for [3,4)s.
        for i in 0..4u64 {
            tw.set(Nanos::from_secs(i), (1 - i % 2) as f64);
        }
        assert!((tw.mean_until(Nanos::from_secs(4)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_by_duration() {
        let mut tw = TimeWeighted::new();
        tw.set(Nanos::ZERO, 10.0); // 10 for 3 seconds
        tw.set(Nanos::from_secs(3), 0.0); // 0 for 1 second
        let m = tw.mean_until(Nanos::from_secs(4));
        assert!((m - 7.5).abs() < 1e-12, "{m}");
    }

    #[test]
    fn window_starts_at_first_set() {
        let mut tw = TimeWeighted::new();
        tw.set(Nanos::from_secs(10), 2.0);
        // Window is [10, 12): mean must ignore the [0,10) gap.
        assert!((tw.mean_until(Nanos::from_secs(12)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_track_values() {
        let mut tw = TimeWeighted::new();
        assert_eq!(tw.min(), None);
        tw.set(Nanos::ZERO, 3.0);
        tw.set(Nanos::from_secs(1), -1.0);
        tw.set(Nanos::from_secs(2), 7.0);
        assert_eq!(tw.min(), Some(-1.0));
        assert_eq!(tw.max(), Some(7.0));
        assert_eq!(tw.current(), 7.0);
    }

    #[test]
    fn repeated_mean_queries_are_consistent() {
        let mut tw = TimeWeighted::new();
        tw.set(Nanos::ZERO, 4.0);
        let a = tw.mean_until(Nanos::from_secs(1));
        let b = tw.mean_until(Nanos::from_secs(2));
        assert!((a - 4.0).abs() < 1e-12);
        assert!((b - 4.0).abs() < 1e-12);
    }
}
