//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is carried as [`Nanos`], an integer count of
//! nanoseconds since the start of the simulation. Integer nanoseconds give
//! deterministic arithmetic (no floating-point drift between runs) while
//! being fine enough to express the microsecond-scale sleep intervals the
//! Metronome paper works with (`hr_sleep()` granularity experiments go down
//! to 1 µs) and the ~35 ns per-packet service times of a 28 Mpps forwarder.
//!
//! A `u64` of nanoseconds covers ~584 years of simulated time, so overflow
//! is not a practical concern; arithmetic is nevertheless implemented with
//! saturating/checked semantics where a wrap would corrupt the event order.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in virtual time, or a span of virtual time, in nanoseconds.
///
/// The same type is deliberately used for both instants and durations:
/// the simulator does enough interval arithmetic (vacation periods, busy
/// periods, sleep timeouts, inter-arrival gaps) that splitting the two into
/// separate types produced more conversion noise than safety in practice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero: the start of the simulation.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// One microsecond.
    pub const MICRO: Nanos = Nanos(1_000);
    /// One millisecond.
    pub const MILLI: Nanos = Nanos(1_000_000);
    /// One second.
    pub const SECOND: Nanos = Nanos(1_000_000_000);

    /// Construct from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    ///
    /// Negative and non-finite inputs clamp to zero: callers feed this from
    /// model formulas that can transiently produce tiny negative values.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Construct from fractional microseconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Nanos::from_secs_f64(us * 1e-6)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, floored at zero.
    ///
    /// Used pervasively when computing residual timeouts, where scheduling
    /// jitter can make the "deadline" land slightly in the past.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (caps at [`Nanos::MAX`]).
    #[inline]
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Multiply a duration by an integer scale factor (saturating).
    #[inline]
    pub fn scaled(self, factor: u64) -> Nanos {
        Nanos(self.0.saturating_mul(factor))
    }

    /// Multiply a duration by a floating factor, rounding to nearest ns.
    ///
    /// Non-finite or negative factors clamp to zero.
    #[inline]
    pub fn scaled_f64(self, factor: f64) -> Nanos {
        if !factor.is_finite() || factor <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos(((self.0 as f64) * factor).round().min(u64::MAX as f64) as u64)
    }

    /// The midpoint between two instants (no overflow).
    #[inline]
    pub fn midpoint(self, other: Nanos) -> Nanos {
        Nanos(self.0 / 2 + other.0 / 2 + (self.0 & other.0 & 1))
    }

    /// Smaller of two times.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two times.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero time/duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Div<Nanos> for Nanos {
    /// Ratio of two durations (dimensionless).
    type Output = f64;
    #[inline]
    fn div(self, rhs: Nanos) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Rem<Nanos> for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Nanos {
    /// Human-oriented rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "∞")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An amortized monotonic clock for realtime hot paths.
///
/// Reading the OS monotonic clock (`Instant::now()`) costs a vDSO call —
/// tens of nanoseconds — which is the same order as the per-packet budget of
/// a 25+ Mpps pipeline. The realtime components (latency stamping, trace
/// timestamps, pacing backstops) rarely need per-packet precision: one fresh
/// read per *burst* or per scheduler *turn* bounds the staleness by the
/// burst service time (a few µs at worst) while removing the clock read from
/// the per-packet path entirely.
///
/// The contract:
///
/// * [`CoarseClock::tick`] performs one precise read, caches it, and returns
///   it. Call it at batch/turn boundaries.
/// * [`CoarseClock::cached`] returns the last ticked value with **no**
///   clock read. Use it for every timestamp inside the batch.
/// * The cached value is nondecreasing (`Instant` is monotonic and the cache
///   only moves forward), so per-owner timestamp streams stay sorted.
/// * Sleep deadlines must NOT use the cached value: keep the precise
///   [`CoarseClock::epoch`]-anchored path for anything that blocks.
///
/// The type is deliberately `!Sync` (interior `Cell`): each worker, shard,
/// or recorder owns its own instance, so there is no cross-thread cache
/// coherence traffic — the same reason DPDK keeps per-lcore cycle caches.
#[derive(Debug, Clone)]
pub struct CoarseClock {
    epoch: std::time::Instant,
    cached: core::cell::Cell<u64>,
}

impl CoarseClock {
    /// A clock anchored at "now"; the cache starts at zero (the epoch).
    pub fn new() -> Self {
        Self::from_epoch(std::time::Instant::now())
    }

    /// A clock anchored at an existing epoch, so several clocks (or a clock
    /// and a precise-sleep path) share one timeline.
    pub fn from_epoch(epoch: std::time::Instant) -> Self {
        CoarseClock {
            epoch,
            cached: core::cell::Cell::new(0),
        }
    }

    /// Refresh the cache with one precise clock read and return it.
    #[inline]
    pub fn tick(&self) -> Nanos {
        let now = self.epoch.elapsed().as_nanos() as u64;
        // `Instant` is monotone, but guard the cache anyway so `cached()`
        // can never observe a rewind even if the epoch maths ever changes.
        if now > self.cached.get() {
            self.cached.set(now);
        }
        Nanos(self.cached.get())
    }

    /// The last [`tick`](Self::tick)ed value — no clock read.
    #[inline]
    pub fn cached(&self) -> Nanos {
        Nanos(self.cached.get())
    }

    /// The precise anchor, for sleep deadlines and cross-clock alignment.
    #[inline]
    pub fn epoch(&self) -> std::time::Instant {
        self.epoch
    }
}

impl Default for CoarseClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of CPU cycles, used by the OS/CPU cost model.
///
/// Cycles convert to time through a core's current frequency, so the same
/// per-packet costs stretch correctly when the `ondemand` governor lowers
/// the clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Construct from a raw count.
    #[inline]
    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// Duration of this many cycles on a core clocked at `mhz`.
    #[inline]
    pub fn at_mhz(self, mhz: u32) -> Nanos {
        debug_assert!(mhz > 0, "zero frequency");
        // cycles / (mhz * 1e6 Hz) seconds = cycles * 1000 / mhz nanoseconds.
        Nanos(self.0 * 1_000 / mhz as u64)
    }

    /// How many cycles fit in `dur` at `mhz` (rounded down).
    #[inline]
    pub fn from_duration(dur: Nanos, mhz: u32) -> Cycles {
        Cycles(dur.0 * mhz as u64 / 1_000)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(3), Nanos(3_000));
        assert_eq!(Nanos::from_millis(3), Nanos(3_000_000));
        assert_eq!(Nanos::from_secs(3), Nanos(3_000_000_000));
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos(1_500_000_000));
        assert_eq!(Nanos::from_micros_f64(2.5), Nanos(2_500));
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::INFINITY), Nanos::ZERO);
    }

    #[test]
    fn round_trips() {
        let t = Nanos::from_micros(1234);
        assert!((t.as_micros_f64() - 1234.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.001234).abs() < 1e-12);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Nanos(5).saturating_sub(Nanos(10)), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(Nanos(1)), Nanos::MAX);
        assert_eq!(Nanos(10).saturating_sub(Nanos(4)), Nanos(6));
    }

    #[test]
    fn scaled_f64_rounds() {
        assert_eq!(Nanos(1000).scaled_f64(1.5), Nanos(1500));
        assert_eq!(Nanos(1000).scaled_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos(1000).scaled_f64(f64::NAN), Nanos::ZERO);
    }

    #[test]
    fn ratio_division() {
        let a = Nanos::from_micros(30);
        let b = Nanos::from_micros(10);
        assert!((a / b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(999)), "999ns");
        assert_eq!(format!("{}", Nanos::from_micros(10)), "10.000µs");
        assert_eq!(format!("{}", Nanos::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(1)), "1.000s");
    }

    #[test]
    fn cycles_to_time() {
        // 2100 cycles at 2100 MHz is exactly 1 µs.
        assert_eq!(Cycles(2100).at_mhz(2100), Nanos::from_micros(1));
        // 75 cycles at 2100 MHz ≈ 35 ns (the l3fwd per-packet cost).
        assert_eq!(Cycles(75).at_mhz(2100), Nanos(35));
    }

    #[test]
    fn cycles_from_duration_round_trip() {
        let dur = Nanos::from_micros(10);
        let c = Cycles::from_duration(dur, 2100);
        assert_eq!(c, Cycles(21_000));
        assert_eq!(c.at_mhz(2100), dur);
    }

    #[test]
    fn coarse_clock_cached_is_free_and_monotone() {
        let c = CoarseClock::new();
        assert_eq!(c.cached(), Nanos::ZERO, "fresh clock has not ticked");
        let t1 = c.tick();
        assert_eq!(c.cached(), t1, "cached returns the last tick");
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(c.cached(), t1, "cached never reads the clock");
        let t2 = c.tick();
        assert!(t2 >= t1, "ticks are nondecreasing");
        assert!(t2 > t1, "2ms later the precise read must have advanced");
    }

    #[test]
    fn coarse_clock_shares_an_epoch() {
        let epoch = std::time::Instant::now();
        let a = CoarseClock::from_epoch(epoch);
        let b = CoarseClock::from_epoch(epoch);
        let (ta, tb) = (a.tick(), b.tick());
        // Same timeline: two back-to-back ticks land within a generous bound.
        assert!(tb.saturating_sub(ta) < Nanos::from_millis(100));
        assert_eq!(a.epoch(), epoch);
    }

    #[test]
    fn midpoint_no_overflow() {
        assert_eq!(Nanos(2).midpoint(Nanos(4)), Nanos(3));
        assert_eq!(Nanos::MAX.midpoint(Nanos::MAX), Nanos::MAX);
        assert_eq!(Nanos(3).midpoint(Nanos(3)), Nanos(3));
    }
}
