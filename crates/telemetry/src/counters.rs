//! Lock-light counters: the hot-path half of the telemetry subsystem.
//!
//! A [`TelemetryHub`] owns one [`WorkerCounters`] per thread and one
//! [`QueueCounters`] per Rx queue, all plain `AtomicU64`s updated with
//! `Ordering::Relaxed`. Workers publish through a per-thread
//! [`WorkerTelemetry`] view (which binds the worker index once, so the
//! sink callbacks carry no identity lookup); the sampler thread reads the
//! same atomics without ever blocking a worker. Counter reads are
//! monotone-per-counter but not a consistent cross-counter cut — windowed
//! deltas absorb that, which is why the sampler works on snapshots.

use crate::sink::{DropCause, PhaseKind, SleepKind, TelemetrySink};
use metronome_sim::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-worker counters (one cache-friendly block per thread).
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Timer wake-ups.
    pub wakeups: AtomicU64,
    /// Nanoseconds spent awake (wake → next sleep).
    pub busy_nanos: AtomicU64,
    /// Nanoseconds spent asleep (as measured, including oversleep).
    pub sleep_nanos: AtomicU64,
    /// Sleeps taken under the short adaptive timeout `TS`.
    pub sleeps_short: AtomicU64,
    /// Sleeps taken under the long backup timeout `TL`.
    pub sleeps_long: AtomicU64,
    /// Sleeps taken under a fixed-period retrieval timer (ConstSleep's
    /// `r_sleep` period, InterruptLike's moderation window).
    pub sleeps_fixed: AtomicU64,
    /// Measured oversleep: how much later than requested the sleep
    /// service actually woke the thread, summed in nanoseconds. Lets the
    /// ConstSleep baseline and Metronome report comparable sleep-service
    /// precision on real hardware.
    pub oversleep_nanos: AtomicU64,
}

/// Per-queue counters plus the `TS` gauge.
#[derive(Debug, Default)]
pub struct QueueCounters {
    /// Packets retrieved (drained by winners).
    pub retrieved: AtomicU64,
    /// Non-empty retrieval bursts.
    pub bursts: AtomicU64,
    /// Packets tail-dropped at the Rx ring.
    pub dropped_ring: AtomicU64,
    /// Packets lost to mempool exhaustion.
    pub dropped_pool: AtomicU64,
    /// Packets suppressed by injected faults before reaching the ring.
    pub dropped_fault: AtomicU64,
    /// Current adaptive `TS` in nanoseconds (gauge, last-writer-wins).
    pub ts_ns: AtomicU64,
}

/// The shared counter block for one running Metronome instance.
#[derive(Debug)]
pub struct TelemetryHub {
    workers: Vec<WorkerCounters>,
    queues: Vec<QueueCounters>,
    /// Which retrieval discipline the counted workers run ("metronome",
    /// "busy-poll", "interrupt", "const-sleep", ...). Propagated into
    /// snapshots so exported series are comparable across systems.
    discipline: &'static str,
}

impl TelemetryHub {
    /// Hub for `m_workers` threads over `n_queues` queues, labelled with
    /// the default "metronome" discipline.
    pub fn new(m_workers: usize, n_queues: usize) -> Arc<Self> {
        Self::labeled(m_workers, n_queues, "metronome")
    }

    /// [`TelemetryHub::new`] with an explicit retrieval-discipline label.
    pub fn labeled(m_workers: usize, n_queues: usize, discipline: &'static str) -> Arc<Self> {
        Arc::new(TelemetryHub {
            workers: (0..m_workers).map(|_| WorkerCounters::default()).collect(),
            queues: (0..n_queues).map(|_| QueueCounters::default()).collect(),
            discipline,
        })
    }

    /// The retrieval-discipline label this hub counts under.
    pub fn discipline(&self) -> &'static str {
        self.discipline
    }

    /// Number of worker slots.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of queue slots.
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    /// A worker's counter block.
    pub fn worker(&self, w: usize) -> &WorkerCounters {
        &self.workers[w]
    }

    /// A queue's counter block.
    pub fn queue(&self, q: usize) -> &QueueCounters {
        &self.queues[q]
    }

    /// The per-thread publishing view for worker `w`.
    pub fn worker_sink(self: &Arc<Self>, w: usize) -> WorkerTelemetry {
        assert!(w < self.workers.len(), "worker index out of range");
        WorkerTelemetry {
            hub: Arc::clone(self),
            worker: w,
        }
    }

    /// Total packets retrieved across queues.
    pub fn total_retrieved(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.retrieved.load(Ordering::Relaxed))
            .sum()
    }

    /// Total wake-ups across workers.
    pub fn total_wakeups(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.wakeups.load(Ordering::Relaxed))
            .sum()
    }

    /// Fold the hub's counters into `snap` (the sampler-facing read side).
    /// Gauges the hub does not own (occupancy, pool, energy, latency) are
    /// left untouched for the caller to fill.
    pub fn fill_snapshot(&self, snap: &mut crate::sampler::CounterSnapshot) {
        snap.discipline = self.discipline;
        snap.retrieved = self.total_retrieved();
        snap.wakeups = self.total_wakeups();
        snap.busy_nanos = self
            .workers
            .iter()
            .map(|w| w.busy_nanos.load(Ordering::Relaxed))
            .sum();
        snap.sleep_nanos = self
            .workers
            .iter()
            .map(|w| w.sleep_nanos.load(Ordering::Relaxed))
            .sum();
        snap.oversleep_nanos = self
            .workers
            .iter()
            .map(|w| w.oversleep_nanos.load(Ordering::Relaxed))
            .sum();
        snap.dropped_ring = self
            .queues
            .iter()
            .map(|q| q.dropped_ring.load(Ordering::Relaxed))
            .sum();
        snap.dropped_pool = self
            .queues
            .iter()
            .map(|q| q.dropped_pool.load(Ordering::Relaxed))
            .sum();
        snap.dropped_fault = self
            .queues
            .iter()
            .map(|q| q.dropped_fault.load(Ordering::Relaxed))
            .sum();
        snap.ts_ns = self
            .queues
            .iter()
            .map(|q| q.ts_ns.load(Ordering::Relaxed))
            .collect();
    }
}

/// A queue-level sink over the whole hub (no worker identity): producers
/// (load generators, NIC models) use this to account drops.
impl TelemetrySink for TelemetryHub {
    fn retrieved(&self, q: usize, n: u64) {
        let qc = &self.queues[q];
        qc.retrieved.fetch_add(n, Ordering::Relaxed);
        qc.bursts.fetch_add(1, Ordering::Relaxed);
    }

    fn dropped(&self, q: usize, cause: DropCause, n: u64) {
        if n == 0 {
            return;
        }
        let qc = &self.queues[q];
        match cause {
            DropCause::Ring => qc.dropped_ring.fetch_add(n, Ordering::Relaxed),
            DropCause::Pool => qc.dropped_pool.fetch_add(n, Ordering::Relaxed),
            DropCause::Fault => qc.dropped_fault.fetch_add(n, Ordering::Relaxed),
        };
    }

    fn ts_update(&self, q: usize, ts: Nanos) {
        self.queues[q].ts_ns.store(ts.as_nanos(), Ordering::Relaxed);
    }
}

/// Worker `w`'s publishing handle: binds the worker index so every sink
/// callback is a direct relaxed-atomic bump on pre-resolved counters.
#[derive(Clone, Debug)]
pub struct WorkerTelemetry {
    hub: Arc<TelemetryHub>,
    worker: usize,
}

impl WorkerTelemetry {
    /// The hub this view publishes into.
    pub fn hub(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// The bound worker index.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

impl TelemetrySink for WorkerTelemetry {
    fn phase(&self, _phase: PhaseKind) {
        // Phase transitions are implied by the counter deltas below; a
        // tracing sink could record them individually.
    }

    fn wake(&self) {
        self.hub.workers[self.worker]
            .wakeups
            .fetch_add(1, Ordering::Relaxed);
    }

    fn sleep_planned(&self, kind: SleepKind, _planned: Nanos) {
        let w = &self.hub.workers[self.worker];
        match kind {
            SleepKind::Short => w.sleeps_short.fetch_add(1, Ordering::Relaxed),
            SleepKind::Long => w.sleeps_long.fetch_add(1, Ordering::Relaxed),
            SleepKind::Fixed => w.sleeps_fixed.fetch_add(1, Ordering::Relaxed),
            SleepKind::Stagger => 0,
        };
    }

    fn busy(&self, dur: Nanos) {
        self.hub.workers[self.worker]
            .busy_nanos
            .fetch_add(dur.as_nanos(), Ordering::Relaxed);
    }

    fn slept(&self, dur: Nanos) {
        self.hub.workers[self.worker]
            .sleep_nanos
            .fetch_add(dur.as_nanos(), Ordering::Relaxed);
    }

    fn overslept(&self, dur: Nanos) {
        self.hub.workers[self.worker]
            .oversleep_nanos
            .fetch_add(dur.as_nanos(), Ordering::Relaxed);
    }

    fn retrieved(&self, q: usize, n: u64) {
        self.hub.retrieved(q, n);
    }

    fn dropped(&self, q: usize, cause: DropCause, n: u64) {
        self.hub.dropped(q, cause, n);
    }

    fn ts_update(&self, q: usize, ts: Nanos) {
        self.hub.ts_update(q, ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_accumulates_worker_events() {
        let hub = TelemetryHub::new(2, 2);
        let w0 = hub.worker_sink(0);
        let w1 = hub.worker_sink(1);
        w0.wake();
        w0.busy(Nanos::from_micros(5));
        w0.slept(Nanos::from_micros(30));
        w0.retrieved(0, 32);
        w1.wake();
        w1.retrieved(1, 8);
        w1.dropped(1, DropCause::Pool, 3);
        hub.dropped(0, DropCause::Ring, 4);
        hub.ts_update(0, Nanos::from_micros(17));

        assert_eq!(hub.total_wakeups(), 2);
        assert_eq!(hub.total_retrieved(), 40);
        assert_eq!(hub.queue(0).dropped_ring.load(Ordering::Relaxed), 4);
        assert_eq!(hub.queue(1).dropped_pool.load(Ordering::Relaxed), 3);
        assert_eq!(hub.queue(0).ts_ns.load(Ordering::Relaxed), 17_000);
        assert_eq!(hub.worker(0).busy_nanos.load(Ordering::Relaxed), 5_000);
        assert_eq!(hub.worker(0).sleep_nanos.load(Ordering::Relaxed), 30_000);
        assert_eq!(hub.queue(0).bursts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sleep_kinds_split() {
        let hub = TelemetryHub::new(1, 1);
        let w = hub.worker_sink(0);
        w.sleep_planned(SleepKind::Short, Nanos::from_micros(20));
        w.sleep_planned(SleepKind::Short, Nanos::from_micros(20));
        w.sleep_planned(SleepKind::Long, Nanos::from_micros(500));
        w.sleep_planned(SleepKind::Fixed, Nanos::from_micros(100));
        w.sleep_planned(SleepKind::Stagger, Nanos::ZERO);
        assert_eq!(hub.worker(0).sleeps_short.load(Ordering::Relaxed), 2);
        assert_eq!(hub.worker(0).sleeps_long.load(Ordering::Relaxed), 1);
        assert_eq!(hub.worker(0).sleeps_fixed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn discipline_label_reaches_snapshots() {
        let hub = TelemetryHub::labeled(1, 1, "busy-poll");
        assert_eq!(hub.discipline(), "busy-poll");
        let w = hub.worker_sink(0);
        w.overslept(Nanos::from_micros(3));
        w.overslept(Nanos::from_micros(4));
        let mut snap = crate::sampler::CounterSnapshot::new(Nanos::from_millis(1));
        hub.fill_snapshot(&mut snap);
        assert_eq!(snap.discipline, "busy-poll");
        assert_eq!(snap.oversleep_nanos, 7_000);
        // The default constructor keeps the historical label.
        assert_eq!(TelemetryHub::new(1, 1).discipline(), "metronome");
    }

    #[test]
    fn snapshot_fill_reads_all_counters() {
        let hub = TelemetryHub::new(1, 2);
        let w = hub.worker_sink(0);
        w.wake();
        w.retrieved(0, 10);
        w.retrieved(1, 20);
        hub.dropped(0, DropCause::Ring, 2);
        hub.ts_update(1, Nanos::from_micros(25));
        let mut snap = crate::sampler::CounterSnapshot::new(Nanos::from_millis(1));
        hub.fill_snapshot(&mut snap);
        assert_eq!(snap.retrieved, 30);
        assert_eq!(snap.wakeups, 1);
        assert_eq!(snap.dropped_ring, 2);
        assert_eq!(snap.ts_ns, vec![0, 25_000]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worker_sink_bounds_checked() {
        let hub = TelemetryHub::new(1, 1);
        let _ = hub.worker_sink(1);
    }
}
