//! CSV export of a [`TimeSeries`]: one row per window, the derived
//! per-window columns the figures plot plus the raw counter deltas.

use crate::sampler::TimeSeries;

/// Column headers of [`timeseries_csv`], in order.
pub const HEADERS: &[&str] = &[
    "window",
    "t_start_s",
    "t_end_s",
    "retrieved",
    "offered",
    "dropped_ring",
    "dropped_pool",
    "dropped_fault",
    "wakeups",
    "oversleep_us",
    "duty_cycle",
    "throughput_mpps",
    "loss",
    "ts_us_q0",
    "rho_q0",
    "occupancy",
    "pool_in_use",
    "pool_cached",
    "power_w",
    "lat_p50_us",
    "lat_p95_us",
    "lat_p99_us",
    "wake_p50_us",
    "wake_p99_us",
    "sched_p99_us",
    "jitter_p50_us",
    "jitter_p99_us",
    "discipline",
];

/// Render the series as CSV (headers + one row per window). Latency
/// columns are empty for windows that recorded no samples.
pub fn timeseries_csv(ts: &TimeSeries) -> String {
    let mut out = HEADERS.join(",");
    out.push('\n');
    for w in &ts.windows {
        let (p50, p95, p99) = match &w.latency {
            Some(l) => (
                format!("{:.3}", l.p50_us),
                format!("{:.3}", l.p95_us),
                format!("{:.3}", l.p99_us),
            ),
            None => (String::new(), String::new(), String::new()),
        };
        // Trace-histogram columns: empty unless tracing recorded samples
        // in the window (same convention as the latency columns).
        let (wake_p50, wake_p99) = match &w.wake_latency {
            Some(l) => (format!("{:.3}", l.p50_us), format!("{:.3}", l.p99_us)),
            None => (String::new(), String::new()),
        };
        let sched_p99 = w
            .sched_delay
            .as_ref()
            .map(|l| format!("{:.3}", l.p99_us))
            .unwrap_or_default();
        // Generator pacing columns: empty when the window recorded no
        // offered packets (sim backend, or an idle window).
        let (jitter_p50, jitter_p99) = match &w.gen_jitter {
            Some(l) => (format!("{:.3}", l.p50_us), format!("{:.3}", l.p99_us)),
            None => (String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{:.6},{:.6},{},{},{},{},{},{},{:.3},{:.4},{:.4},{:.6},{:.2},{:.4},{},{},{},{:.3},{},{},{},{},{},{},{},{},{}\n",
            w.index,
            w.start.as_secs_f64(),
            w.end.as_secs_f64(),
            w.retrieved,
            w.offered,
            w.dropped_ring,
            w.dropped_pool,
            w.dropped_fault,
            w.wakeups,
            w.oversleep_nanos as f64 / 1e3,
            w.duty_cycle(),
            w.throughput_mpps(),
            w.loss(),
            w.ts_us(),
            w.rho0(),
            w.total_occupancy(),
            w.pool_in_use,
            w.pool_cached,
            w.power_watts,
            p50,
            p95,
            p99,
            wake_p50,
            wake_p99,
            sched_p99,
            jitter_p50,
            jitter_p99,
            ts.discipline(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{CounterSnapshot, Sampler};
    use metronome_sim::Nanos;

    #[test]
    fn one_row_per_window_plus_header() {
        let mut s = Sampler::new(Nanos::from_millis(1));
        for i in 1..=3u64 {
            let mut snap = CounterSnapshot::new(Nanos::from_millis(i));
            snap.retrieved = i * 10;
            snap.ts_ns = vec![20_000];
            s.sample(snap);
        }
        let csv = timeseries_csv(&s.into_series());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].split(',').count(), HEADERS.len());
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), HEADERS.len(), "row {row}");
        }
        // Windows are deltas: each window retrieved 10.
        assert!(lines[2].contains(",10,"));
    }
}
