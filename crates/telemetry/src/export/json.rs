//! Hand-rolled JSON writer (the vendored-shim build has no serde).
//!
//! A tiny document model ([`Json`]) plus a renderer that emits valid,
//! deterministic JSON: object keys keep insertion order, `u64` counters
//! are written as integers (no f64 round-trip), and non-finite floats
//! become `null` so a report can never smuggle `NaN` into a file a parser
//! will choke on. This writer is the one serializer in the workspace —
//! `RunReport --json` output and the telemetry series both go through it.

use crate::sampler::TimeSeries;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters; emitted exactly).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (non-finite values render as `null`).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object (panics if `self` is not an object).
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("push on non-object Json"),
        }
        self
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps round-trip precision and always includes
                    // a decimal point or exponent, so integers stay floats.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// The whole series as a JSON document: interval, totals, and one object
/// per window with both raw deltas and the derived per-window columns.
pub fn timeseries_json(ts: &TimeSeries) -> Json {
    let windows: Vec<Json> = ts
        .windows
        .iter()
        .map(|w| {
            let mut o = Json::obj()
                .with("index", w.index)
                .with("t_start_s", w.start.as_secs_f64())
                .with("t_end_s", w.end.as_secs_f64())
                .with("retrieved", w.retrieved)
                .with("offered", w.offered)
                .with("dropped_ring", w.dropped_ring)
                .with("dropped_pool", w.dropped_pool)
                .with("wakeups", w.wakeups)
                .with("busy_nanos", w.busy_nanos)
                .with("sleep_nanos", w.sleep_nanos)
                .with("oversleep_nanos", w.oversleep_nanos)
                .with("duty_cycle", w.duty_cycle())
                .with("throughput_mpps", w.throughput_mpps())
                .with("loss", w.loss())
                .with(
                    "ts_us",
                    Json::Arr(
                        w.ts_ns
                            .iter()
                            .map(|&ns| Json::Float(ns as f64 / 1e3))
                            .collect(),
                    ),
                )
                .with("rho", Json::Arr(w.rho.iter().map(|&r| r.into()).collect()))
                .with(
                    "occupancy",
                    Json::Arr(w.occupancy.iter().map(|&o| o.into()).collect()),
                )
                .with("pool_in_use", w.pool_in_use)
                .with("pool_cached", w.pool_cached)
                .with("power_watts", w.power_watts);
            match &w.latency {
                Some(l) => o.push(
                    "latency_us",
                    Json::obj()
                        .with("count", l.count)
                        .with("p50", l.p50_us)
                        .with("p95", l.p95_us)
                        .with("p99", l.p99_us),
                ),
                None => o.push("latency_us", Json::Null),
            };
            o
        })
        .collect();
    Json::obj()
        .with("interval_s", ts.interval.as_secs_f64())
        .with("discipline", ts.discipline())
        .with(
            "totals",
            Json::obj()
                .with("retrieved", ts.totals.retrieved)
                .with("offered", ts.totals.offered)
                .with("dropped_ring", ts.totals.dropped_ring)
                .with("dropped_pool", ts.totals.dropped_pool)
                .with("wakeups", ts.totals.wakeups)
                .with("busy_nanos", ts.totals.busy_nanos)
                .with("sleep_nanos", ts.totals.sleep_nanos)
                .with("oversleep_nanos", ts.totals.oversleep_nanos),
        )
        .with("windows", Json::Arr(windows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{CounterSnapshot, Sampler};
    use metronome_sim::Nanos;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn objects_keep_order_and_nest() {
        let j = Json::obj()
            .with("b", 1u64)
            .with("a", Json::Arr(vec![Json::Null, 2.5.into()]));
        assert_eq!(j.render(), r#"{"b":1,"a":[null,2.5]}"#);
    }

    #[test]
    fn timeseries_document_shape() {
        let mut s = Sampler::new(Nanos::from_millis(1));
        let mut snap = CounterSnapshot::new(Nanos::from_millis(1));
        snap.retrieved = 42;
        snap.ts_ns = vec![17_000];
        s.sample(snap);
        let doc = timeseries_json(&s.into_series()).render();
        assert!(doc.contains(r#""retrieved":42"#));
        assert!(doc.contains(r#""ts_us":[17.0]"#));
        assert!(doc.contains(r#""windows":["#));
        assert!(!doc.contains("NaN"));
    }
}
