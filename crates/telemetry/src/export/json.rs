//! Hand-rolled JSON reader/writer (the vendored-shim build has no serde).
//!
//! A tiny document model ([`Json`]) plus a renderer that emits valid,
//! deterministic JSON: object keys keep insertion order, `u64` counters
//! are written as integers (no f64 round-trip), and non-finite floats
//! become `null` so a report can never smuggle `NaN` into a file a parser
//! will choke on. This is the one serializer in the workspace —
//! `RunReport --json` output, the telemetry series, and the `metronomed`
//! control protocol all go through it. [`Json::parse`] is the matching
//! recursive-descent reader: strict enough for the control socket
//! (trailing garbage rejected, recursion depth bounded so a hostile
//! request cannot blow the daemon's stack), with positioned errors.

use crate::sampler::TimeSeries;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters; emitted exactly).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (non-finite values render as `null`).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object (panics if `self` is not an object).
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("push on non-object Json"),
        }
        self
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// Parse a complete JSON document. Trailing non-whitespace is an
    /// error (one value per input — the control protocol is one request
    /// per line). Nesting deeper than [`MAX_PARSE_DEPTH`] is rejected.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (floats
    /// with integral values count).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            Json::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` keeps round-trip precision and always includes
                    // a decimal point or exponent, so integers stay floats.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// Deepest nesting [`Json::parse`] accepts. A control-socket request is a
/// couple of levels deep; 64 leaves headroom without letting a hostile
/// `[[[[…]]]]` line recurse the daemon off its stack.
pub const MAX_PARSE_DEPTH: usize = 64;

/// A positioned [`Json::parse`] failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine a surrogate pair when one follows;
                            // lone surrogates become the replacement char.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{fffd}')
                                    } else {
                                        '\u{fffd}'
                                    }
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Take the full UTF-8 scalar starting here (input is a
                    // &str, so the boundary math cannot fail).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !fractional {
            // Integer literal: keep counter exactness where it fits.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(self.err("bad number")),
        }
    }
}

/// The whole series as a JSON document: interval, totals, and one object
/// per window with both raw deltas and the derived per-window columns.
pub fn timeseries_json(ts: &TimeSeries) -> Json {
    let windows: Vec<Json> = ts
        .windows
        .iter()
        .map(|w| {
            let mut o = Json::obj()
                .with("index", w.index)
                .with("t_start_s", w.start.as_secs_f64())
                .with("t_end_s", w.end.as_secs_f64())
                .with("retrieved", w.retrieved)
                .with("offered", w.offered)
                .with("dropped_ring", w.dropped_ring)
                .with("dropped_pool", w.dropped_pool)
                .with("dropped_fault", w.dropped_fault)
                .with("wakeups", w.wakeups)
                .with("busy_nanos", w.busy_nanos)
                .with("sleep_nanos", w.sleep_nanos)
                .with("oversleep_nanos", w.oversleep_nanos)
                .with("duty_cycle", w.duty_cycle())
                .with("throughput_mpps", w.throughput_mpps())
                .with("loss", w.loss())
                .with(
                    "ts_us",
                    Json::Arr(
                        w.ts_ns
                            .iter()
                            .map(|&ns| Json::Float(ns as f64 / 1e3))
                            .collect(),
                    ),
                )
                .with("rho", Json::Arr(w.rho.iter().map(|&r| r.into()).collect()))
                .with(
                    "occupancy",
                    Json::Arr(w.occupancy.iter().map(|&o| o.into()).collect()),
                )
                .with("pool_in_use", w.pool_in_use)
                .with("pool_cached", w.pool_cached)
                .with("power_watts", w.power_watts);
            let lat_window = |l: &crate::sampler::LatencyWindow| {
                Json::obj()
                    .with("count", l.count)
                    .with("p50", l.p50_us)
                    .with("p95", l.p95_us)
                    .with("p99", l.p99_us)
            };
            o.push("latency_us", w.latency.as_ref().map(lat_window));
            o.push("wake_latency_us", w.wake_latency.as_ref().map(lat_window));
            o.push("sched_delay_us", w.sched_delay.as_ref().map(lat_window));
            o.push("gen_jitter_us", w.gen_jitter.as_ref().map(lat_window));
            o
        })
        .collect();
    Json::obj()
        .with("interval_s", ts.interval.as_secs_f64())
        .with("discipline", ts.discipline())
        .with(
            "totals",
            Json::obj()
                .with("retrieved", ts.totals.retrieved)
                .with("offered", ts.totals.offered)
                .with("dropped_ring", ts.totals.dropped_ring)
                .with("dropped_pool", ts.totals.dropped_pool)
                .with("dropped_fault", ts.totals.dropped_fault)
                .with("wakeups", ts.totals.wakeups)
                .with("busy_nanos", ts.totals.busy_nanos)
                .with("sleep_nanos", ts.totals.sleep_nanos)
                .with("oversleep_nanos", ts.totals.oversleep_nanos),
        )
        .with("windows", Json::Arr(windows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{CounterSnapshot, Sampler};
    use metronome_sim::Nanos;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn objects_keep_order_and_nest() {
        let j = Json::obj()
            .with("b", 1u64)
            .with("a", Json::Arr(vec![Json::Null, 2.5.into()]));
        assert_eq!(j.render(), r#"{"b":1,"a":[null,2.5]}"#);
    }

    #[test]
    fn parse_round_trips_render() {
        let doc = Json::obj()
            .with("cmd", "submit")
            .with("rate_pps", 250_000.0)
            .with("m", 2u64)
            .with("neg", -4i64)
            .with("flag", true)
            .with("none", Json::Null)
            .with(
                "faults",
                Json::Arr(vec![Json::obj().with("kind", "spike").with("factor", 2.5)]),
            );
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("cmd").and_then(Json::as_str), Some("submit"));
        assert_eq!(parsed.get("m").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("neg").and_then(Json::as_f64), Some(-4.0));
        assert_eq!(parsed.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("faults").and_then(Json::as_arr).unwrap().len(),
            1
        );
    }

    #[test]
    fn parse_handles_escapes_and_whitespace() {
        let j = Json::parse(" { \"a\\n\\u0041\" : [ 1 , 2.5e1 , \"\\ud83d\\ude00\" ] } ").unwrap();
        let arr = j.get("a\nA").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::UInt(1));
        assert_eq!(arr[1], Json::Float(25.0));
        assert_eq!(arr[2], Json::Str("😀".into()));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} extra",
            "nul",
            "\"unterminated",
            "01x",
            "- 1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Hostile nesting is rejected, not a stack overflow.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn timeseries_document_shape() {
        let mut s = Sampler::new(Nanos::from_millis(1));
        let mut snap = CounterSnapshot::new(Nanos::from_millis(1));
        snap.retrieved = 42;
        snap.ts_ns = vec![17_000];
        s.sample(snap);
        let doc = timeseries_json(&s.into_series()).render();
        assert!(doc.contains(r#""retrieved":42"#));
        assert!(doc.contains(r#""ts_us":[17.0]"#));
        assert!(doc.contains(r#""windows":["#));
        assert!(!doc.contains("NaN"));
    }
}
