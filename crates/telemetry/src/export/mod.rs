//! Pluggable exporters over a sampled [`TimeSeries`].
//!
//! Three built-in formats (the vendor-shim build has no serde, so JSON is
//! hand-rolled):
//!
//! * [`csv`] — one row per window, ready for plotting;
//! * [`json`] — a structured document (also the workspace's generic JSON
//!   writer, reused by `RunReport`'s `--json` output);
//! * [`prometheus`] — text exposition format of the closing totals plus a
//!   parser for round-trip tests and scrape tooling.

pub mod csv;
pub mod json;
pub mod prometheus;

use crate::sampler::TimeSeries;

/// A serialization format for a sampled series.
pub trait Exporter {
    /// Render the series.
    fn export(&self, series: &TimeSeries) -> String;
    /// Conventional file extension (no dot).
    fn file_ext(&self) -> &'static str;
}

/// CSV exporter (see [`csv::timeseries_csv`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct CsvExporter;

impl Exporter for CsvExporter {
    fn export(&self, series: &TimeSeries) -> String {
        csv::timeseries_csv(series)
    }
    fn file_ext(&self) -> &'static str {
        "csv"
    }
}

/// JSON exporter (see [`json::timeseries_json`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct JsonExporter;

impl Exporter for JsonExporter {
    fn export(&self, series: &TimeSeries) -> String {
        json::timeseries_json(series).render()
    }
    fn file_ext(&self) -> &'static str {
        "json"
    }
}

/// Prometheus exporter: renders the series' closing cumulative totals as
/// a `/metrics`-style page (see [`prometheus::snapshot_metrics`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PrometheusExporter;

impl Exporter for PrometheusExporter {
    fn export(&self, series: &TimeSeries) -> String {
        prometheus::render(&prometheus::snapshot_metrics(&series.totals))
    }
    fn file_ext(&self) -> &'static str {
        "prom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{CounterSnapshot, Sampler};
    use metronome_sim::Nanos;

    #[test]
    fn all_exporters_render_the_same_series() {
        let mut s = Sampler::new(Nanos::from_millis(1));
        let mut snap = CounterSnapshot::new(Nanos::from_millis(1));
        snap.retrieved = 99;
        s.sample(snap);
        let ts = s.into_series();
        let exporters: [&dyn Exporter; 3] = [&CsvExporter, &JsonExporter, &PrometheusExporter];
        for e in exporters {
            let out = e.export(&ts);
            assert!(out.contains("99"), "{} output missing data", e.file_ext());
            assert!(!e.file_ext().is_empty());
        }
    }
}
