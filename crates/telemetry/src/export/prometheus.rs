//! Prometheus text exposition format: render and parse.
//!
//! The render side emits the standard `# HELP` / `# TYPE` preamble and
//! one sample line per labelled value — what a `/metrics` endpoint would
//! serve. The parse side reads the same subset back (names, labels with
//! escaped values, finite float values, counter/gauge types), which gives
//! the exporter a round-trip test and downstream tooling a scrape parser
//! that doesn't need a Prometheus server.

use crate::sampler::CounterSnapshot;
use metronome_sim::stats::Histogram;

/// Metric type, per the exposition format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromKind {
    /// Monotone cumulative counter.
    Counter,
    /// Instantaneous value.
    Gauge,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
        }
    }
}

/// One labelled sample of a metric.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Label pairs, in order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A metric family: name, help, type, and its samples.
#[derive(Clone, Debug, PartialEq)]
pub struct PromMetric {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Free-text help line.
    pub help: String,
    /// Counter or gauge.
    pub kind: PromKind,
    /// The samples.
    pub samples: Vec<PromSample>,
}

impl PromMetric {
    /// A metric with one unlabelled sample.
    pub fn scalar(name: &str, help: &str, kind: PromKind, value: f64) -> Self {
        PromMetric {
            name: name.into(),
            help: help.into(),
            kind,
            samples: vec![PromSample {
                labels: Vec::new(),
                value,
            }],
        }
    }

    /// A metric with one sample per queue, labelled `queue="<i>"`.
    pub fn per_queue(name: &str, help: &str, kind: PromKind, values: &[f64]) -> Self {
        PromMetric {
            name: name.into(),
            help: help.into(),
            kind,
            samples: values
                .iter()
                .enumerate()
                .map(|(q, &v)| PromSample {
                    labels: vec![("queue".into(), q.to_string())],
                    value: v,
                })
                .collect(),
        }
    }
}

/// Render metric families in the text exposition format.
pub fn render(metrics: &[PromMetric]) -> String {
    let mut out = String::new();
    for m in metrics {
        // The exposition format requires escaping `\` and newlines in
        // help text — unescaped, a multi-line help would masquerade as a
        // sample line and break the round-trip.
        let help = m.help.replace('\\', "\\\\").replace('\n', "\\n");
        out.push_str(&format!("# HELP {} {help}\n", m.name));
        out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind.as_str()));
        for s in &m.samples {
            out.push_str(&m.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    for c in v.chars() {
                        match c {
                            '\\' => out.push_str("\\\\"),
                            '"' => out.push_str("\\\""),
                            '\n' => out.push_str("\\n"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            if s.value.is_finite() {
                if s.value == s.value.trunc() && s.value.abs() < 1e15 {
                    out.push_str(&format!("{}", s.value as i64));
                } else {
                    out.push_str(&format!("{:?}", s.value));
                }
            } else {
                out.push_str("NaN");
            }
            out.push('\n');
        }
    }
    out
}

/// Parse text in the exposition format back into metric families.
///
/// Supports the subset [`render`] emits: `# HELP` / `# TYPE` preambles,
/// optional labels with escaped values, float sample values. Unknown
/// comment lines are skipped; a sample line for a metric with no `# TYPE`
/// preamble defaults to gauge.
pub fn parse(text: &str) -> Result<Vec<PromMetric>, String> {
    let mut metrics: Vec<PromMetric> = Vec::new();
    let find = |metrics: &mut Vec<PromMetric>, name: &str| -> usize {
        match metrics.iter().position(|m| m.name == name) {
            Some(i) => i,
            None => {
                metrics.push(PromMetric {
                    name: name.into(),
                    help: String::new(),
                    kind: PromKind::Gauge,
                    samples: Vec::new(),
                });
                metrics.len() - 1
            }
        }
    };
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {raw}", ln + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            let i = find(&mut metrics, name);
            metrics[i].help = unescape_help(help);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').ok_or_else(|| err("malformed TYPE"))?;
            let kind = match kind.trim() {
                "counter" => PromKind::Counter,
                "gauge" => PromKind::Gauge,
                other => return Err(err(&format!("unsupported metric type '{other}'"))),
            };
            let i = find(&mut metrics, name);
            metrics[i].kind = kind;
        } else if line.starts_with('#') {
            continue; // other comments
        } else {
            // Sample line: name[{labels}] value
            let (head, value) = line
                .rsplit_once(|c: char| c.is_whitespace())
                .ok_or_else(|| err("missing value"))?;
            let value: f64 = value.parse().map_err(|_| err("bad value"))?;
            let (name, labels) = match head.find('{') {
                Some(open) => {
                    let name = &head[..open];
                    let body = head[open..]
                        .strip_prefix('{')
                        .and_then(|s| s.strip_suffix('}'))
                        .ok_or_else(|| err("unterminated label set"))?;
                    (name, parse_labels(body).map_err(|m| err(&m))?)
                }
                None => (head.trim_end(), Vec::new()),
            };
            let i = find(&mut metrics, name);
            metrics[i].samples.push(PromSample { labels, value });
        }
    }
    Ok(metrics)
}

/// Undo [`render`]'s help-text escaping (`\\` and `\n`).
fn unescape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    let mut chars = help.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators / trailing comma.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label '{key}' value not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((key, value));
    }
}

/// Render a log-bucketed [`Histogram`] of nanosecond values as the
/// standard Prometheus histogram trio: `{name}_bucket` cumulative
/// counters with `le` labels in *seconds*, `{name}_sum` (seconds), and
/// `{name}_count`. Each `le` is the exclusive upper bound of a
/// log-linear bucket, closed by the mandatory `+Inf` bucket; by
/// construction `{name}_bucket{{le="+Inf"}} == {name}_count` and
/// `{name}_sum` is the exact sum of recorded values.
pub fn histogram_families(name: &str, help: &str, h: &Histogram) -> Vec<PromMetric> {
    let mut cumulative = 0u64;
    let mut buckets: Vec<PromSample> = h
        .iter_spans()
        .map(|(_, high, c)| {
            cumulative += c;
            PromSample {
                labels: vec![("le".into(), format!("{:?}", high as f64 / 1e9))],
                value: cumulative as f64,
            }
        })
        .collect();
    buckets.push(PromSample {
        labels: vec![("le".into(), "+Inf".into())],
        value: h.count() as f64,
    });
    vec![
        PromMetric {
            name: format!("{name}_bucket"),
            help: help.into(),
            kind: PromKind::Counter,
            samples: buckets,
        },
        PromMetric::scalar(
            &format!("{name}_sum"),
            help,
            PromKind::Counter,
            h.sum() as f64 / 1e9,
        ),
        PromMetric::scalar(
            &format!("{name}_count"),
            help,
            PromKind::Counter,
            h.count() as f64,
        ),
    ]
}

/// The standard metric families for one cumulative snapshot, prefixed
/// `metronome_` — what a live `/metrics` scrape of a running instance
/// would serve. When the snapshot carries a retrieval-discipline label,
/// every sample gains a `system="<discipline>"` label so scrapes from
/// different disciplines stay distinguishable side by side.
pub fn snapshot_metrics(snap: &CounterSnapshot) -> Vec<PromMetric> {
    let per_queue_f64 = |v: &[u64]| -> Vec<f64> { v.iter().map(|&x| x as f64).collect() };
    let mut metrics = vec![
        PromMetric::scalar(
            "metronome_retrieved_packets_total",
            "Packets retrieved and processed",
            PromKind::Counter,
            snap.retrieved as f64,
        ),
        PromMetric::scalar(
            "metronome_dropped_ring_packets_total",
            "Packets tail-dropped at the Rx rings",
            PromKind::Counter,
            snap.dropped_ring as f64,
        ),
        PromMetric::scalar(
            "metronome_dropped_pool_packets_total",
            "Packets lost to mempool exhaustion",
            PromKind::Counter,
            snap.dropped_pool as f64,
        ),
        PromMetric::scalar(
            "metronome_dropped_fault_packets_total",
            "Packets suppressed by injected faults",
            PromKind::Counter,
            snap.dropped_fault as f64,
        ),
        PromMetric::scalar(
            "metronome_wakeups_total",
            "Worker timer wake-ups",
            PromKind::Counter,
            snap.wakeups as f64,
        ),
        PromMetric::scalar(
            "metronome_busy_seconds_total",
            "Worker awake time, summed over workers",
            PromKind::Counter,
            snap.busy_nanos as f64 / 1e9,
        ),
        PromMetric::scalar(
            "metronome_sleep_seconds_total",
            "Worker asleep time, summed over workers",
            PromKind::Counter,
            snap.sleep_nanos as f64 / 1e9,
        ),
        PromMetric::scalar(
            "metronome_oversleep_seconds_total",
            "Measured sleep-service oversleep, summed over workers",
            PromKind::Counter,
            snap.oversleep_nanos as f64 / 1e9,
        ),
        PromMetric::per_queue(
            "metronome_ts_microseconds",
            "Current adaptive short timeout TS per queue",
            PromKind::Gauge,
            &snap
                .ts_ns
                .iter()
                .map(|&ns| ns as f64 / 1e3)
                .collect::<Vec<_>>(),
        ),
        PromMetric::per_queue(
            "metronome_rho",
            "Smoothed per-queue load estimate",
            PromKind::Gauge,
            &snap.rho,
        ),
        PromMetric::per_queue(
            "metronome_ring_occupancy",
            "Rx ring occupancy per queue",
            PromKind::Gauge,
            &per_queue_f64(&snap.occupancy),
        ),
        PromMetric::scalar(
            "metronome_mempool_in_use",
            "Mempool buffers currently handed out",
            PromKind::Gauge,
            snap.pool_in_use as f64,
        ),
        PromMetric::scalar(
            "metronome_mempool_cached",
            "Mempool buffers parked in per-worker caches",
            PromKind::Gauge,
            snap.pool_cached as f64,
        ),
    ];
    // Flight-recorder histogram series (only when tracing is on).
    if let Some(h) = &snap.wake_latency {
        metrics.extend(histogram_families(
            "metronome_wake_latency_seconds",
            "Wake-to-first-poll latency",
            h,
        ));
    }
    if let Some(h) = &snap.oversleep_hist {
        metrics.extend(histogram_families(
            "metronome_oversleep_seconds",
            "Per-sleep oversleep; the sum equals metronome_oversleep_seconds_total",
            h,
        ));
    }
    if let Some(h) = &snap.sched_delay {
        metrics.extend(histogram_families(
            "metronome_sched_delay_seconds",
            "Executor ready-to-scheduled delay",
            h,
        ));
    }
    // Generator pacing check (present whenever the wall-clock generator
    // runs, independent of tracing).
    if let Some(h) = &snap.gen_jitter {
        metrics.extend(histogram_families(
            "metronome_gen_jitter_seconds",
            "Generator offered-vs-scheduled lateness per packet",
            h,
        ));
    }
    if !snap.discipline.is_empty() {
        for m in &mut metrics {
            for s in &mut m.samples {
                s.labels
                    .insert(0, ("system".into(), snap.discipline.into()));
            }
        }
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use metronome_sim::Nanos;

    #[test]
    fn render_parse_round_trip() {
        let metrics = vec![
            PromMetric::scalar("m_total", "a counter", PromKind::Counter, 12345.0),
            PromMetric::scalar("m_help", "multi\nline \\ help", PromKind::Gauge, 1.0),
            PromMetric::per_queue("m_gauge", "per queue", PromKind::Gauge, &[1.5, 0.25, 3.0]),
            PromMetric {
                name: "m_tricky".into(),
                help: "labels with escapes".into(),
                kind: PromKind::Gauge,
                samples: vec![PromSample {
                    labels: vec![("app".into(), "l3\"fwd\\x".into())],
                    value: -0.5,
                }],
            },
        ];
        let text = render(&metrics);
        let back = parse(&text).expect("parse what we rendered");
        assert_eq!(back, metrics);
    }

    #[test]
    fn snapshot_metrics_round_trip() {
        let mut snap = CounterSnapshot::new(Nanos::from_secs(1));
        snap.retrieved = 1_000_000;
        snap.dropped_ring = 17;
        snap.wakeups = 42_000;
        snap.busy_nanos = 250_000_000;
        snap.ts_ns = vec![17_500, 28_000];
        snap.rho = vec![0.83, 0.12];
        snap.occupancy = vec![3, 0];
        snap.pool_in_use = 64;
        let metrics = snapshot_metrics(&snap);
        let text = render(&metrics);
        let back = parse(&text).expect("valid exposition text");
        assert_eq!(back, metrics);
        // Spot-check the text itself.
        assert!(text.contains("# TYPE metronome_retrieved_packets_total counter"));
        assert!(text.contains("metronome_retrieved_packets_total 1000000"));
        assert!(text.contains("metronome_ts_microseconds{queue=\"1\"} 28"));
        assert!(text.contains("metronome_rho{queue=\"0\"} 0.83"));
    }

    #[test]
    fn discipline_label_round_trips_as_system() {
        let mut snap = CounterSnapshot::new(Nanos::from_secs(1));
        snap.discipline = "busy-poll";
        snap.retrieved = 7;
        snap.ts_ns = vec![10_000];
        snap.rho = vec![0.5];
        snap.occupancy = vec![1];
        let metrics = snapshot_metrics(&snap);
        let text = render(&metrics);
        let back = parse(&text).expect("valid exposition text");
        assert_eq!(back, metrics);
        assert!(text.contains("metronome_retrieved_packets_total{system=\"busy-poll\"} 7"));
        // Per-queue samples carry both labels, system first.
        assert!(text.contains("metronome_rho{system=\"busy-poll\",queue=\"0\"} 0.5"));
    }

    #[test]
    fn histogram_families_expose_buckets_sum_count() {
        let mut h = Histogram::latency();
        for v in [1_000u64, 5_000, 5_000, 2_000_000] {
            h.record(v);
        }
        let fams = histogram_families("metronome_wake_latency_seconds", "wake latency", &h);
        assert_eq!(fams.len(), 3);
        let bucket = &fams[0];
        assert_eq!(bucket.name, "metronome_wake_latency_seconds_bucket");
        // Cumulative counts are nondecreasing and close at +Inf == count.
        let mut prev = 0.0;
        for s in &bucket.samples {
            assert!(s.value >= prev, "bucket counts must be cumulative");
            prev = s.value;
        }
        let inf = bucket.samples.last().unwrap();
        assert_eq!(inf.labels[0], ("le".into(), "+Inf".into()));
        assert_eq!(inf.value, 4.0);
        assert_eq!(fams[2].samples[0].value, 4.0, "_count matches");
        let sum_s = fams[1].samples[0].value;
        assert!((sum_s - 2_011_000.0 / 1e9).abs() < 1e-12, "_sum is exact");
        // The whole trio survives a render/parse round trip.
        let text = render(&fams);
        assert_eq!(parse(&text).expect("valid exposition text"), fams);
    }

    #[test]
    fn snapshot_metrics_include_trace_histograms_when_present() {
        let mut snap = CounterSnapshot::new(Nanos::from_secs(1));
        snap.ts_ns = vec![10_000];
        snap.rho = vec![0.5];
        snap.occupancy = vec![0];
        let bare = render(&snapshot_metrics(&snap));
        assert!(!bare.contains("wake_latency"));
        assert!(!bare.contains("gen_jitter"));
        let mut h = Histogram::latency();
        h.record(3_000);
        snap.wake_latency = Some(h.clone());
        snap.oversleep_hist = Some(h.clone());
        snap.sched_delay = Some(h.clone());
        snap.gen_jitter = Some(h);
        snap.oversleep_nanos = 3_000;
        let text = render(&snapshot_metrics(&snap));
        assert!(text.contains("metronome_wake_latency_seconds_bucket"));
        assert!(text.contains("metronome_oversleep_seconds_sum"));
        assert!(text.contains("metronome_sched_delay_seconds_count"));
        assert!(text.contains("metronome_gen_jitter_seconds_bucket"));
        // The oversleep histogram sum reconciles with the counter total.
        let metrics = parse(&text).unwrap();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .samples[0]
                .value
        };
        assert_eq!(
            get("metronome_oversleep_seconds_sum"),
            get("metronome_oversleep_seconds_total")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("# TYPE m histogram\nm 1\n").is_err());
        assert!(parse("m_no_value\n").is_err());
        assert!(parse("m{x=\"unterminated} 1\n").is_err());
    }

    #[test]
    fn parse_skips_unknown_comments_and_blank_lines() {
        let text = "# EOF-ish comment\n\nm 3\n";
        let m = parse(text).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].samples[0].value, 3.0);
        assert_eq!(m[0].kind, PromKind::Gauge); // defaulted
    }
}
