//! # metronome-telemetry — windowed time-series metrics for both backends
//!
//! Metronome's headline results are *time-series* claims (CPU tracks the
//! offered load as `TS` adapts, §V Figs. 9/11), but an end-of-run
//! aggregate can only assert final averages. This crate is the
//! observability layer that turns both backends into per-window series:
//!
//! * [`sink`] — the [`sink::TelemetrySink`] event trait the execution
//!   layers publish into (phase transitions, sleeps, drained bursts, `TS`
//!   updates, drops), with [`sink::NullSink`] as the free disabled
//!   default;
//! * [`counters`] — the hot-path implementation: per-worker and per-queue
//!   **relaxed-atomic** counters ([`counters::TelemetryHub`]) that never
//!   lock or allocate on the datapath;
//! * [`sampler`] — the [`sampler::Sampler`] differences cumulative
//!   [`sampler::CounterSnapshot`]s into fixed-interval
//!   [`sampler::Window`]s (duty cycle, throughput, `TS`/ρ trajectory,
//!   drops by cause, occupancy, per-window latency percentiles), with
//!   exact window→total conservation by construction;
//! * [`export`] — pluggable serializers: CSV rows, hand-rolled JSON (the
//!   vendored build has no serde), and Prometheus text exposition format
//!   (with a parser, so the exporter is round-trip tested);
//! * [`probe`] — the [`probe::OccupancyProbe`] gauge trait rings and
//!   mempools implement;
//! * [`trace`] — flight-recorder tracing: per-worker drop-oldest event
//!   rings ([`trace::TraceRecorder`]), wake/oversleep/scheduler-delay
//!   histograms, and Chrome trace-event dumps of the merged rings.
//!
//! The simulation backend samples at scheduled event boundaries; the
//! realtime backend runs a sampler thread. Both feed the same `Sampler`,
//! so a window means the same thing in either report.
//!
//! ```
//! use metronome_telemetry::{CounterSnapshot, Sampler, TelemetryHub, TelemetrySink};
//! use metronome_sim::Nanos;
//!
//! let hub = TelemetryHub::new(1, 1); // 1 worker, 1 queue
//! let worker = hub.worker_sink(0);
//! worker.wake();
//! worker.retrieved(0, 32);
//!
//! let mut sampler = Sampler::new(Nanos::from_millis(1));
//! let mut snap = CounterSnapshot::new(Nanos::from_millis(1));
//! hub.fill_snapshot(&mut snap);
//! sampler.sample(snap);
//! let series = sampler.into_series();
//! assert_eq!(series.windows[0].retrieved, 32);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod export;
pub mod probe;
pub mod sampler;
pub mod sink;
pub mod trace;

pub use counters::{QueueCounters, TelemetryHub, WorkerCounters, WorkerTelemetry};
pub use export::json::Json;
pub use export::{CsvExporter, Exporter, JsonExporter, PrometheusExporter};
pub use probe::OccupancyProbe;
pub use sampler::{CounterSnapshot, LatencyWindow, Sampler, TimeSeries, Window};
pub use sink::{DropCause, NullSink, PhaseKind, SleepKind, TelemetrySink};
pub use trace::{
    MarkerKind, NullTrace, TraceDump, TraceEvent, TraceEventKind, TraceHub, TraceRecorder,
    TraceRing, TraceSink, TraceVerdict, TracedSink, WorkerTrace, DEFAULT_RING_CAPACITY,
};
