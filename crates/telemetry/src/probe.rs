//! Occupancy probes: the read-only gauge surface of the datapath.
//!
//! Rings, mempools and their simulation models all answer "how full are
//! you" — the sampler should not care which concrete structure it is
//! probing. Datapath types implement [`OccupancyProbe`] in their own
//! crates (see `metronome-dpdk`); the sampler folds any set of probes
//! into a snapshot's gauge columns.

/// Something with a bounded occupancy that can be read without blocking
/// the datapath (implementations must be lock-free or take only short,
/// uncontended critical sections).
pub trait OccupancyProbe {
    /// Items currently held.
    fn occupancy(&self) -> u64;

    /// Maximum items the structure can hold.
    fn capacity(&self) -> u64;

    /// Fill fraction in `[0, 1]` (0 for a zero-capacity structure).
    fn utilization(&self) -> f64 {
        let cap = self.capacity();
        if cap == 0 {
            0.0
        } else {
            self.occupancy() as f64 / cap as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64, u64);
    impl OccupancyProbe for Fixed {
        fn occupancy(&self) -> u64 {
            self.0
        }
        fn capacity(&self) -> u64 {
            self.1
        }
    }

    #[test]
    fn utilization_guards_zero_capacity() {
        assert_eq!(Fixed(0, 0).utilization(), 0.0);
        assert!((Fixed(32, 128).utilization() - 0.25).abs() < 1e-12);
    }
}
