//! The windowed sampler: cumulative counter snapshots in, fixed-interval
//! [`Window`]s out.
//!
//! The hot path only ever *increments* counters; everything windowed is
//! derived here, off the hot path, by differencing consecutive
//! [`CounterSnapshot`]s. That split has two consequences the tests rely
//! on:
//!
//! * **Conservation by construction** — window deltas telescope, so the
//!   per-window `retrieved`/`dropped_*` columns sum *exactly* to the final
//!   cumulative counters (the sampler starts from an implicit all-zero
//!   snapshot at `t = 0`).
//! * **Backend symmetry** — the simulation samples at scheduled event
//!   boundaries and the realtime backend from a sampler thread, but both
//!   feed the same [`Sampler`], so a [`TimeSeries`] means the same thing
//!   in either report.
//!
//! Per-window latency percentiles come from differencing the cumulative
//! latency [`Histogram`]: bucket-count deltas are themselves a histogram
//! of just that window's samples.

use metronome_sim::stats::Histogram;
use metronome_sim::Nanos;

/// A cumulative reading of every counter the time series tracks, taken at
/// one instant. Counters (`retrieved`, drops, wake-ups, busy/sleep time)
/// are since-start totals; the rest are instantaneous gauges.
#[derive(Clone, Debug, Default)]
pub struct CounterSnapshot {
    /// When the snapshot was taken (run-relative).
    pub at: Nanos,
    /// Retrieval-discipline label of the counted workers ("" when the
    /// producing hub predates labelling or no workers ran).
    pub discipline: &'static str,
    /// Packets retrieved since start.
    pub retrieved: u64,
    /// Packets offered since start (0 when the backend cannot observe it).
    pub offered: u64,
    /// Ring tail-drops since start.
    pub dropped_ring: u64,
    /// Mempool-exhaustion drops since start.
    pub dropped_pool: u64,
    /// Injected-fault drops since start (packets a fault plan suppressed
    /// before they reached the ring).
    pub dropped_fault: u64,
    /// Worker wake-ups since start.
    pub wakeups: u64,
    /// Total worker awake time since start, nanoseconds.
    pub busy_nanos: u64,
    /// Total worker asleep time since start, nanoseconds.
    pub sleep_nanos: u64,
    /// Total measured oversleep (wake-up lateness) since start,
    /// nanoseconds.
    pub oversleep_nanos: u64,
    /// Per-queue adaptive `TS` gauge, nanoseconds.
    pub ts_ns: Vec<u64>,
    /// Per-queue smoothed load estimate gauge.
    pub rho: Vec<f64>,
    /// Per-queue Rx ring occupancy gauge.
    pub occupancy: Vec<u64>,
    /// Mempool buffers currently handed out (gauge).
    pub pool_in_use: u64,
    /// Mempool buffers parked in per-worker caches (gauge; 0 when the
    /// backend allocates straight from the shared freelist).
    pub pool_cached: u64,
    /// Cumulative package energy, joules (simulation backend only).
    pub energy_joules: f64,
    /// Cumulative latency histogram (nanoseconds), if latency is measured.
    pub latency: Option<Histogram>,
    /// Cumulative wake-to-first-poll latency histogram (nanoseconds),
    /// populated when flight-recorder tracing is enabled.
    pub wake_latency: Option<Histogram>,
    /// Cumulative oversleep histogram (nanoseconds; tracing only). Its
    /// sum reconciles exactly against `oversleep_nanos`.
    pub oversleep_hist: Option<Histogram>,
    /// Cumulative scheduler ready-to-run delay histogram (nanoseconds;
    /// tracing on the async backend only).
    pub sched_delay: Option<Histogram>,
    /// Cumulative generator jitter histogram (nanoseconds): how late each
    /// offered packet was relative to its scheduled departure, summed over
    /// generator shards. The always-on pacing check — present whenever the
    /// wall-clock generator runs.
    pub gen_jitter: Option<Histogram>,
}

impl CounterSnapshot {
    /// An all-zero snapshot at `at`.
    pub fn new(at: Nanos) -> Self {
        CounterSnapshot {
            at,
            ..CounterSnapshot::default()
        }
    }
}

/// Per-window latency percentiles, microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyWindow {
    /// Samples recorded in this window.
    pub count: u64,
    /// Median, µs.
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
}

/// One fixed-interval window of the time series: counter deltas over
/// `[start, end)` plus end-of-window gauges.
#[derive(Clone, Debug, Default)]
pub struct Window {
    /// Window index (0-based).
    pub index: usize,
    /// Window start (run-relative).
    pub start: Nanos,
    /// Window end (run-relative).
    pub end: Nanos,
    /// Packets retrieved in this window.
    pub retrieved: u64,
    /// Packets offered in this window (0 when unobserved).
    pub offered: u64,
    /// Ring tail-drops in this window.
    pub dropped_ring: u64,
    /// Mempool-exhaustion drops in this window.
    pub dropped_pool: u64,
    /// Injected-fault drops in this window.
    pub dropped_fault: u64,
    /// Worker wake-ups in this window.
    pub wakeups: u64,
    /// Worker awake time in this window, nanoseconds (summed over
    /// workers, so it can exceed the window span).
    pub busy_nanos: u64,
    /// Worker asleep time in this window, nanoseconds.
    pub sleep_nanos: u64,
    /// Measured oversleep in this window, nanoseconds.
    pub oversleep_nanos: u64,
    /// Per-queue `TS` at window end, nanoseconds.
    pub ts_ns: Vec<u64>,
    /// Per-queue ρ at window end.
    pub rho: Vec<f64>,
    /// Per-queue ring occupancy at window end.
    pub occupancy: Vec<u64>,
    /// Mempool buffers handed out at window end.
    pub pool_in_use: u64,
    /// Mempool buffers parked in per-worker caches at window end.
    pub pool_cached: u64,
    /// Package power over the window, watts (0 when unobserved).
    pub power_watts: f64,
    /// Latency percentiles of samples recorded in this window.
    pub latency: Option<LatencyWindow>,
    /// Wake-to-first-poll percentiles of this window's wakes (tracing
    /// only).
    pub wake_latency: Option<LatencyWindow>,
    /// Scheduler-delay percentiles of this window's picks (tracing on
    /// the async backend only).
    pub sched_delay: Option<LatencyWindow>,
    /// Generator offered-vs-scheduled lateness percentiles of packets
    /// offered in this window (wall-clock generator only).
    pub gen_jitter: Option<LatencyWindow>,
}

impl Window {
    /// Window span.
    pub fn span(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }

    /// Fraction of the window the workers were awake, summed over workers
    /// (1.0 = one core's worth; can exceed 1 with several workers).
    pub fn duty_cycle(&self) -> f64 {
        let span = self.span().as_nanos();
        if span == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / span as f64
        }
    }

    /// Retrieval throughput over the window, Mpps.
    pub fn throughput_mpps(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.retrieved as f64 / span / 1e6
        }
    }

    /// Total drops in the window, all causes.
    pub fn dropped(&self) -> u64 {
        self.dropped_ring + self.dropped_pool + self.dropped_fault
    }

    /// Loss fraction over the window (0 when nothing was offered).
    pub fn loss(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.offered as f64
        }
    }

    /// Queue-0 `TS` in microseconds (the column Fig. 9 plots).
    pub fn ts_us(&self) -> f64 {
        self.ts_ns.first().map_or(0.0, |&ns| ns as f64 / 1e3)
    }

    /// Mean `TS` across queues, microseconds.
    pub fn mean_ts_us(&self) -> f64 {
        if self.ts_ns.is_empty() {
            0.0
        } else {
            self.ts_ns.iter().map(|&ns| ns as f64 / 1e3).sum::<f64>() / self.ts_ns.len() as f64
        }
    }

    /// Queue-0 ρ at window end.
    pub fn rho0(&self) -> f64 {
        self.rho.first().copied().unwrap_or(0.0)
    }

    /// Total ring occupancy at window end.
    pub fn total_occupancy(&self) -> u64 {
        self.occupancy.iter().sum()
    }
}

/// A complete fixed-interval series plus its closing cumulative totals.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Nominal sampling interval.
    pub interval: Nanos,
    /// The windows, in time order.
    pub windows: Vec<Window>,
    /// The final cumulative snapshot (aggregates of the whole run).
    pub totals: CounterSnapshot,
}

impl TimeSeries {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the series holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Sum of a per-window counter column, for conservation checks.
    pub fn column_sum(&self, f: impl Fn(&Window) -> u64) -> u64 {
        self.windows.iter().map(f).sum()
    }

    /// The retrieval-discipline label the series was sampled under
    /// (carried by the closing snapshot; "" when unlabelled).
    pub fn discipline(&self) -> &'static str {
        self.totals.discipline
    }
}

/// Snapshot differencer: feed cumulative [`CounterSnapshot`]s in time
/// order, collect the [`TimeSeries`]. The first window spans from the
/// implicit all-zero snapshot at `t = 0` to the first sample, so the
/// window columns telescope exactly to the final totals.
#[derive(Clone, Debug)]
pub struct Sampler {
    interval: Nanos,
    prev: CounterSnapshot,
    windows: Vec<Window>,
}

impl Sampler {
    /// Sampler with the given nominal interval (recorded in the series;
    /// the actual window bounds come from the snapshots fed in).
    pub fn new(interval: Nanos) -> Self {
        Sampler {
            interval,
            prev: CounterSnapshot::new(Nanos::ZERO),
            windows: Vec::new(),
        }
    }

    /// Close the window `[prev.at, snap.at)` and make `snap` the new base.
    ///
    /// # Panics
    /// If snapshots go backwards in time.
    pub fn sample(&mut self, snap: CounterSnapshot) {
        assert!(snap.at >= self.prev.at, "snapshots must be in time order");
        let latency = diff_latency(self.prev.latency.as_ref(), snap.latency.as_ref());
        let wake_latency =
            diff_latency(self.prev.wake_latency.as_ref(), snap.wake_latency.as_ref());
        let sched_delay = diff_latency(self.prev.sched_delay.as_ref(), snap.sched_delay.as_ref());
        let gen_jitter = diff_latency(self.prev.gen_jitter.as_ref(), snap.gen_jitter.as_ref());
        let energy_delta = (snap.energy_joules - self.prev.energy_joules).max(0.0);
        let span_s = snap.at.saturating_sub(self.prev.at).as_secs_f64();
        self.windows.push(Window {
            index: self.windows.len(),
            start: self.prev.at,
            end: snap.at,
            retrieved: snap.retrieved.saturating_sub(self.prev.retrieved),
            offered: snap.offered.saturating_sub(self.prev.offered),
            dropped_ring: snap.dropped_ring.saturating_sub(self.prev.dropped_ring),
            dropped_pool: snap.dropped_pool.saturating_sub(self.prev.dropped_pool),
            dropped_fault: snap.dropped_fault.saturating_sub(self.prev.dropped_fault),
            wakeups: snap.wakeups.saturating_sub(self.prev.wakeups),
            busy_nanos: snap.busy_nanos.saturating_sub(self.prev.busy_nanos),
            sleep_nanos: snap.sleep_nanos.saturating_sub(self.prev.sleep_nanos),
            oversleep_nanos: snap
                .oversleep_nanos
                .saturating_sub(self.prev.oversleep_nanos),
            ts_ns: snap.ts_ns.clone(),
            rho: snap.rho.clone(),
            occupancy: snap.occupancy.clone(),
            pool_in_use: snap.pool_in_use,
            pool_cached: snap.pool_cached,
            power_watts: if span_s > 0.0 {
                energy_delta / span_s
            } else {
                0.0
            },
            latency,
            wake_latency,
            sched_delay,
            gen_jitter,
        });
        self.prev = snap;
    }

    /// Finish, yielding the series (totals = the last snapshot fed in).
    pub fn into_series(self) -> TimeSeries {
        TimeSeries {
            interval: self.interval,
            windows: self.windows,
            totals: self.prev,
        }
    }

    /// Windows closed so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows closed so far (live view, e.g. for printing each
    /// window as it closes).
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }
}

/// Percentiles of the samples recorded between two cumulative histogram
/// snapshots, computed from bucket-count deltas. `prev = None` means
/// "empty histogram".
fn diff_latency(prev: Option<&Histogram>, cur: Option<&Histogram>) -> Option<LatencyWindow> {
    let cur = cur?;
    let prev_counts: std::collections::HashMap<u64, u64> =
        prev.map(|p| p.iter_buckets().collect()).unwrap_or_default();
    // iter_buckets yields buckets in index order and bucket lower bounds
    // are strictly increasing with the index, so this delta is sorted.
    let delta: Vec<(u64, u64)> = cur
        .iter_buckets()
        .map(|(low, c)| (low, c - prev_counts.get(&low).copied().unwrap_or(0)))
        .filter(|&(_, c)| c > 0)
        .collect();
    let total: u64 = delta.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    let quantile = |q: f64| -> f64 {
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(low, c) in &delta {
            seen += c;
            if seen >= target {
                return low as f64 / 1e3;
            }
        }
        delta.last().map_or(0.0, |&(low, _)| low as f64 / 1e3)
    };
    Some(LatencyWindow {
        count: total,
        p50_us: quantile(0.50),
        p95_us: quantile(0.95),
        p99_us: quantile(0.99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_us: u64, retrieved: u64, dropped_ring: u64) -> CounterSnapshot {
        CounterSnapshot {
            at: Nanos::from_micros(at_us),
            retrieved,
            dropped_ring,
            ..CounterSnapshot::default()
        }
    }

    #[test]
    fn windows_are_deltas_and_telescope() {
        let mut s = Sampler::new(Nanos::from_micros(100));
        s.sample(snap(100, 40, 1));
        s.sample(snap(200, 100, 1));
        s.sample(snap(300, 100, 7));
        let ts = s.into_series();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.windows[0].retrieved, 40);
        assert_eq!(ts.windows[1].retrieved, 60);
        assert_eq!(ts.windows[2].retrieved, 0);
        assert_eq!(ts.windows[2].dropped_ring, 6);
        assert_eq!(ts.column_sum(|w| w.retrieved), ts.totals.retrieved);
        assert_eq!(ts.column_sum(|w| w.dropped_ring), ts.totals.dropped_ring);
    }

    #[test]
    fn derived_metrics() {
        let mut w = Window {
            start: Nanos::ZERO,
            end: Nanos::from_millis(1),
            retrieved: 1500,
            offered: 2000,
            dropped_ring: 400,
            dropped_pool: 100,
            busy_nanos: 250_000,
            ts_ns: vec![17_000, 29_000],
            ..Window::default()
        };
        assert!((w.duty_cycle() - 0.25).abs() < 1e-12);
        assert!((w.throughput_mpps() - 1.5).abs() < 1e-12);
        assert!((w.loss() - 0.25).abs() < 1e-12);
        assert!((w.ts_us() - 17.0).abs() < 1e-12);
        assert!((w.mean_ts_us() - 23.0).abs() < 1e-12);
        // Zero-width / zero-offered windows never divide by zero.
        w.end = Nanos::ZERO;
        w.offered = 0;
        assert_eq!(w.duty_cycle(), 0.0);
        assert_eq!(w.throughput_mpps(), 0.0);
        assert_eq!(w.loss(), 0.0);
    }

    #[test]
    fn latency_windows_diff_the_cumulative_histogram() {
        let mut h = Histogram::latency();
        for v in 1..=100u64 {
            h.record(v * 1_000); // 1..=100 µs
        }
        let mut s = Sampler::new(Nanos::from_micros(100));
        let mut first = snap(100, 0, 0);
        first.latency = Some(h.clone());
        s.sample(first);
        // Second window: 1000 more samples, all near 500 µs.
        for _ in 0..1000 {
            h.record(500_000);
        }
        let mut second = snap(200, 0, 0);
        second.latency = Some(h.clone());
        s.sample(second);
        let ts = s.into_series();
        let w0 = ts.windows[0].latency.unwrap();
        let w1 = ts.windows[1].latency.unwrap();
        assert_eq!(w0.count, 100);
        assert_eq!(w1.count, 1000);
        assert!((w0.p50_us - 50.0).abs() / 50.0 < 0.1, "{}", w0.p50_us);
        // The second window must reflect only its own samples, not the
        // first window's 1..=100 µs tail.
        assert!((w1.p50_us - 500.0).abs() / 500.0 < 0.05, "{}", w1.p50_us);
        assert!(w1.p99_us >= w1.p50_us);
        // Window latency counts also telescope.
        assert_eq!(w0.count + w1.count, h.count());
    }

    #[test]
    fn empty_window_has_no_latency() {
        let mut s = Sampler::new(Nanos::from_micros(10));
        let mut a = snap(10, 0, 0);
        a.latency = Some(Histogram::latency());
        s.sample(a);
        assert_eq!(s.into_series().windows[0].latency, None);
    }

    #[test]
    fn power_is_energy_delta_over_span() {
        let mut s = Sampler::new(Nanos::from_millis(1));
        let mut a = snap(1_000, 0, 0);
        a.energy_joules = 0.002;
        s.sample(a);
        let mut b = snap(2_000, 0, 0);
        b.energy_joules = 0.005;
        s.sample(b);
        let ts = s.into_series();
        assert!((ts.windows[0].power_watts - 2.0).abs() < 1e-9);
        assert!((ts.windows[1].power_watts - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn snapshots_must_move_forward() {
        let mut s = Sampler::new(Nanos::from_micros(10));
        s.sample(snap(100, 0, 0));
        s.sample(snap(50, 0, 0));
    }
}
