//! The event surface the execution layers publish into.
//!
//! Everything that happens on a packet-retrieval thread — phase
//! transitions of the Listing 2 loop, sleeps, drained bursts, `TS`
//! recomputations, drops on the producer side — funnels through one
//! object-free trait, [`TelemetrySink`]. The contract is deliberately
//! strict: an implementation must be safe to call from the hot path, so it
//! may touch **relaxed atomics only** — no locks, no allocation, no
//! syscalls. [`crate::counters::TelemetryHub`] is the canonical
//! implementation; [`NullSink`] is the free disabled default (every method
//! body is empty, so a `NullSink`-monomorphized engine compiles to the
//! pre-telemetry code).

use metronome_sim::Nanos;

/// Where a Metronome thread is inside the Listing 2 loop, at the grain
/// telemetry cares about (coarser than the engine's internal state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Start-up stagger before the first contention.
    Stagger,
    /// Woke from a timer sleep, about to race.
    Wake,
    /// Won the trylock race; draining the queue.
    Drain,
    /// Lost the trylock race; becoming a backup.
    LostRace,
    /// Released the queue after draining it dry.
    Release,
    /// About to sleep.
    Sleep,
}

/// Which timeout a sleep was taken under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SleepKind {
    /// The short adaptive timeout `TS` (race winners).
    Short,
    /// The long backup timeout `TL` (race losers).
    Long,
    /// A fixed-period retrieval timer: the ConstSleep baseline's `r_sleep`
    /// period and the InterruptLike discipline's moderation window.
    Fixed,
    /// The one-off start-up stagger.
    Stagger,
}

/// Why a packet was lost before a worker could retrieve it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// Rx ring descriptor exhaustion (tail-drop), including frames
    /// stranded in rings at shutdown.
    Ring,
    /// Mempool exhaustion: a descriptor was free but no buffer was.
    Pool,
    /// Injected by the fault layer (`traffic::faults`): packets a
    /// `FaultPlan` or `FaultyArrivals` wrapper suppressed before they
    /// reached the ring. Counted separately so fault runs reconcile
    /// exactly against the offered load.
    Fault,
}

/// Telemetry event sink. All methods default to no-ops so implementations
/// pick the events they care about; all take `&self` so one sink can be
/// shared across threads.
///
/// Hot-path contract: implementations must be bounded to relaxed-atomic
/// updates — no locks, no allocation (the realtime worker calls these
/// while holding a queue trylock).
pub trait TelemetrySink {
    /// The thread entered `phase`.
    fn phase(&self, phase: PhaseKind) {
        let _ = phase;
    }

    /// The thread woke from a timer sleep.
    fn wake(&self) {}

    /// The thread is about to sleep `planned` under `kind`.
    fn sleep_planned(&self, kind: SleepKind, planned: Nanos) {
        let _ = (kind, planned);
    }

    /// The thread was awake (busy) for `dur` since its last sleep.
    fn busy(&self, dur: Nanos) {
        let _ = dur;
    }

    /// The thread actually slept `dur` (includes oversleep).
    fn slept(&self, dur: Nanos) {
        let _ = dur;
    }

    /// The thread overslept its requested timeout by `dur` (measured
    /// wake-up lateness of the sleep service; 0 for a perfectly precise
    /// sleeper).
    fn overslept(&self, dur: Nanos) {
        let _ = dur;
    }

    /// `n` packets were retrieved from queue `q` in one burst.
    fn retrieved(&self, q: usize, n: u64) {
        let _ = (q, n);
    }

    /// `n` packets destined for queue `q` were lost to `cause`.
    fn dropped(&self, q: usize, cause: DropCause, n: u64) {
        let _ = (q, cause, n);
    }

    /// Queue `q`'s adaptive `TS` was recomputed to `ts`.
    fn ts_update(&self, q: usize, ts: Nanos) {
        let _ = (q, ts);
    }
}

/// The disabled sink: every event is a no-op the optimizer erases.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// Sharing a sink by reference is still a sink (lets drivers pass
/// `&sink` without caring whether the callee wants ownership).
impl<S: TelemetrySink + ?Sized> TelemetrySink for &S {
    fn phase(&self, phase: PhaseKind) {
        (**self).phase(phase)
    }
    fn wake(&self) {
        (**self).wake()
    }
    fn sleep_planned(&self, kind: SleepKind, planned: Nanos) {
        (**self).sleep_planned(kind, planned)
    }
    fn busy(&self, dur: Nanos) {
        (**self).busy(dur)
    }
    fn slept(&self, dur: Nanos) {
        (**self).slept(dur)
    }
    fn overslept(&self, dur: Nanos) {
        (**self).overslept(dur)
    }
    fn retrieved(&self, q: usize, n: u64) {
        (**self).retrieved(q, n)
    }
    fn dropped(&self, q: usize, cause: DropCause, n: u64) {
        (**self).dropped(q, cause, n)
    }
    fn ts_update(&self, q: usize, ts: Nanos) {
        (**self).ts_update(q, ts)
    }
}
