//! Flight-recorder tracing: per-worker binary event rings, merged dumps,
//! and latency histograms.
//!
//! Counters ([`crate::counters`]) answer *how much*; this module answers
//! *when*. Every worker (thread backend) or executor shard (async
//! backend) owns a [`TraceRecorder`]: a fixed-capacity drop-oldest ring
//! of compact [`TraceEvent`]s plus three log-bucketed histograms (wake
//! latency, oversleep, scheduler delay). The record path is strictly
//! worker-local — one `RefCell` borrow, one ring slot write, no locks,
//! no allocation, no atomics shared across workers — so an enabled
//! recorder costs a clock read and a few stores per event, and the
//! disabled path ([`NullTrace`]) monomorphizes to nothing at all.
//!
//! Publication is decoupled from recording: every [`FLUSH_EVERY`] events
//! the recorder *tries* to copy its ring into a shared slot
//! (`try_lock`; contention skips the flush, never blocks the worker),
//! and deposits unconditionally on drop. [`TraceHub::dump`] merges the
//! slots into a [`TraceDump`], which renders as a Chrome trace-event
//! JSON document (`chrome://tracing` / Perfetto loadable).
//!
//! Reconciliation is designed in, not sampled: the ring keeps exact
//! per-kind *recorded* counts that survive drop-oldest overwrites, the
//! oversleep histogram records exactly the values the driver hands to
//! [`TelemetrySink::overslept`], and [`TracedSink`] emits one
//! [`TraceEventKind::Burst`] record per [`TelemetrySink::retrieved`]
//! call — so burst events equal the hub's `bursts` counter and the
//! histogram sum equals `oversleep_nanos`, exactly.

use std::cell::RefCell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::export::json::Json;
use crate::sink::{DropCause, PhaseKind, SleepKind, TelemetrySink};
use metronome_sim::stats::Histogram;
use metronome_sim::{CoarseClock, Nanos};

/// Default per-recorder ring capacity (events). At ~40 bytes/event this
/// is a few hundred KiB per worker — enough for several milliseconds of
/// saturated tracing, the flight-recorder window.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Events between opportunistic slot publications. Large enough that the
/// amortized copy cost disappears, small enough that a live `trace`
/// snapshot of a busy worker is at most a few hundred events stale.
pub const FLUSH_EVERY: u32 = 1024;

/// Number of distinct [`TraceEventKind`]s (length of per-kind count
/// arrays).
pub const N_EVENT_KINDS: usize = 14;

/// What a [`TraceEvent`] records. The two payload words `a`/`b` are
/// kind-dependent (documented per variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A discipline turn returned a verdict. `a` = [`TraceVerdict`] code.
    TurnVerdict = 0,
    /// A timer sleep completed. `a` = requested ns, `b` = actual ns.
    Sleep = 1,
    /// The worker parked on a doorbell.
    Park = 2,
    /// The worker unparked. `a` = parked ns.
    Unpark = 3,
    /// First poll after a wake. `a` = wake-to-first-poll latency ns.
    FirstPoll = 4,
    /// The scheduler started a slice. `a` = task, `b` = vruntime.
    SliceBegin = 5,
    /// A slice ended. `a` = task, `b` = busy ns.
    SliceEnd = 6,
    /// The scheduler picked a newly-runnable task. `a` = task,
    /// `b` = ready-to-run delay ns.
    SchedPick = 7,
    /// A timer-wheel insert. `a` = task, `b` = deadline ns.
    WheelInsert = 8,
    /// A timer-wheel cascade re-placed entries. `a` = entry count.
    WheelCascade = 9,
    /// A timer-wheel entry fired. `a` = task, `b` = 1 live / 0 stale.
    WheelFire = 10,
    /// A retrieval burst was drained. `a` = queue, `b` = packets.
    Burst = 11,
    /// Live-reconfigure marker. `a` = caller-defined code.
    Reconfigure = 12,
    /// Fault-plan realization marker. `a` = caller-defined code.
    FaultPlan = 13,
}

impl TraceEventKind {
    /// Every kind, in code order (index == code).
    pub const ALL: [TraceEventKind; N_EVENT_KINDS] = [
        TraceEventKind::TurnVerdict,
        TraceEventKind::Sleep,
        TraceEventKind::Park,
        TraceEventKind::Unpark,
        TraceEventKind::FirstPoll,
        TraceEventKind::SliceBegin,
        TraceEventKind::SliceEnd,
        TraceEventKind::SchedPick,
        TraceEventKind::WheelInsert,
        TraceEventKind::WheelCascade,
        TraceEventKind::WheelFire,
        TraceEventKind::Burst,
        TraceEventKind::Reconfigure,
        TraceEventKind::FaultPlan,
    ];

    /// Stable display name (also the Chrome event name).
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::TurnVerdict => "turn-verdict",
            TraceEventKind::Sleep => "sleep",
            TraceEventKind::Park => "park",
            TraceEventKind::Unpark => "unpark",
            TraceEventKind::FirstPoll => "first-poll",
            TraceEventKind::SliceBegin => "slice-begin",
            TraceEventKind::SliceEnd => "slice-end",
            TraceEventKind::SchedPick => "sched-pick",
            TraceEventKind::WheelInsert => "wheel-insert",
            TraceEventKind::WheelCascade => "wheel-cascade",
            TraceEventKind::WheelFire => "wheel-fire",
            TraceEventKind::Burst => "burst",
            TraceEventKind::Reconfigure => "reconfigure",
            TraceEventKind::FaultPlan => "fault-plan",
        }
    }

    /// The kind with the given code, if valid.
    pub fn from_code(code: u8) -> Option<TraceEventKind> {
        TraceEventKind::ALL.get(code as usize).copied()
    }
}

/// The verdict a discipline turn produced, as recorded in a
/// [`TraceEventKind::TurnVerdict`] event (mirrors the core `Verdict`
/// shape without depending on the core crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceVerdict {
    /// Found work; poll again immediately.
    Continue = 0,
    /// Nothing to do right now; yield the timeslice.
    Yield = 1,
    /// Sleep for a computed timeout.
    Sleep = 2,
    /// Park on a doorbell.
    Park = 3,
    /// Cooperative timed wait.
    Wait = 4,
}

impl TraceVerdict {
    /// The code stored in the event's `a` word.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Stable display name.
    pub fn label(self) -> &'static str {
        match self {
            TraceVerdict::Continue => "continue",
            TraceVerdict::Yield => "yield",
            TraceVerdict::Sleep => "sleep",
            TraceVerdict::Park => "park",
            TraceVerdict::Wait => "wait",
        }
    }
}

/// Control-plane marker kinds (recorded by the daemon / runner, not by
/// workers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// A live reconfigure was applied.
    Reconfigure,
    /// A fault-plan window was realized.
    FaultPlan,
}

/// One recorded event: a timestamp (nanoseconds since the owning
/// [`TraceHub`]'s epoch) plus kind and two kind-dependent payload words.
/// `Copy` and fixed-size — the ring never allocates per event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the hub epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// First payload word (kind-dependent).
    pub a: u64,
    /// Second payload word (kind-dependent).
    pub b: u64,
}

/// Fixed-capacity drop-oldest event ring with an exact overflow counter
/// and per-kind *recorded* counts that survive overwrites.
///
/// Single-owner by design: the ring lives inside a recorder's `RefCell`
/// and is never shared, so `push` is a plain slot write — no atomics.
#[derive(Clone, Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    len: usize,
    dropped: u64,
    kind_counts: [u64; N_EVENT_KINDS],
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events (min 1). The
    /// buffer is allocated up front; `push` never allocates.
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            len: 0,
            dropped: 0,
            kind_counts: [0; N_EVENT_KINDS],
        }
    }

    /// Record one event. When full, the oldest stored event is
    /// overwritten (and counted in [`TraceRing::dropped`]); the per-kind
    /// recorded count is bumped either way.
    pub fn push(&mut self, event: TraceEvent) {
        self.kind_counts[event.kind as usize] += 1;
        if self.buf.len() < self.cap {
            self.buf.push(event);
            self.len += 1;
        } else if self.len < self.cap {
            // Refilling after a drain: overwrite retired slots in place.
            let idx = (self.head + self.len) % self.cap;
            self.buf[idx] = event;
            self.len += 1;
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently stored (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum events stored at once.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten by drop-oldest overflow — exact: every `push`
    /// beyond capacity bumps this by one.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events *recorded* (stored or since overwritten) of `kind`.
    pub fn kind_count(&self, kind: TraceEventKind) -> u64 {
        self.kind_counts[kind as usize]
    }

    /// Total events recorded across all kinds.
    pub fn recorded(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    /// The stored events, oldest first (copied; the ring keeps them).
    pub fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % self.cap]);
        }
        out
    }
}

/// Trace event sink — the hot-path recording trait. Like
/// [`TelemetrySink`], every method takes `&self` and defaults to a
/// no-op, so the disabled path ([`NullTrace`]) compiles away entirely.
///
/// Record-path contract: an implementation may touch only state owned by
/// the calling worker — no locks held unconditionally, no allocation, no
/// atomics shared across workers.
pub trait TraceSink {
    /// A discipline turn produced `verdict`.
    fn turn_verdict(&self, verdict: TraceVerdict) {
        let _ = verdict;
    }

    /// A timer sleep completed: the driver asked for `requested`, the
    /// service delivered `actual`, and charged `overslept` lateness (the
    /// exact value handed to [`TelemetrySink::overslept`], so histogram
    /// sums reconcile against the `oversleep_nanos` counter).
    fn sleep(&self, requested: Nanos, actual: Nanos, overslept: Nanos) {
        let _ = (requested, actual, overslept);
    }

    /// The worker parked on its doorbell.
    fn park(&self) {}

    /// The worker unparked after `parked`.
    fn unpark(&self, parked: Nanos) {
        let _ = parked;
    }

    /// First poll after a wake, `wake_latency` after the wake signal.
    fn first_poll(&self, wake_latency: Nanos) {
        let _ = wake_latency;
    }

    /// The scheduler started a slice of `task` at virtual runtime
    /// `vruntime`.
    fn slice_begin(&self, task: usize, vruntime: u64) {
        let _ = (task, vruntime);
    }

    /// The slice of `task` ended after `busy`.
    fn slice_end(&self, task: usize, busy: Nanos) {
        let _ = (task, busy);
    }

    /// The scheduler picked newly-runnable `task`, `delay` after it
    /// became ready.
    fn sched_pick(&self, task: usize, delay: Nanos) {
        let _ = (task, delay);
    }

    /// A timer was armed for `task` at `deadline_ns` (executor clock).
    fn wheel_insert(&self, task: usize, deadline_ns: u64) {
        let _ = (task, deadline_ns);
    }

    /// A wheel cascade re-placed `entries` entries.
    fn wheel_cascade(&self, entries: u64) {
        let _ = entries;
    }

    /// A wheel entry for `task` fired (`live` false = stale generation,
    /// discarded).
    fn wheel_fire(&self, task: usize, live: bool) {
        let _ = (task, live);
    }

    /// A burst of `n` packets was drained from queue `q` (one event per
    /// [`TelemetrySink::retrieved`] call).
    fn burst(&self, q: usize, n: u64) {
        let _ = (q, n);
    }

    /// A control-plane marker.
    fn marker(&self, kind: MarkerKind, a: u64) {
        let _ = (kind, a);
    }
}

/// The disabled tracer: every event is a no-op the optimizer erases, so
/// an untraced driver monomorphizes to the pre-tracing code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {}

/// Sharing a tracer by reference is still a tracer.
impl<T: TraceSink + ?Sized> TraceSink for &T {
    fn turn_verdict(&self, verdict: TraceVerdict) {
        (**self).turn_verdict(verdict)
    }
    fn sleep(&self, requested: Nanos, actual: Nanos, overslept: Nanos) {
        (**self).sleep(requested, actual, overslept)
    }
    fn park(&self) {
        (**self).park()
    }
    fn unpark(&self, parked: Nanos) {
        (**self).unpark(parked)
    }
    fn first_poll(&self, wake_latency: Nanos) {
        (**self).first_poll(wake_latency)
    }
    fn slice_begin(&self, task: usize, vruntime: u64) {
        (**self).slice_begin(task, vruntime)
    }
    fn slice_end(&self, task: usize, busy: Nanos) {
        (**self).slice_end(task, busy)
    }
    fn sched_pick(&self, task: usize, delay: Nanos) {
        (**self).sched_pick(task, delay)
    }
    fn wheel_insert(&self, task: usize, deadline_ns: u64) {
        (**self).wheel_insert(task, deadline_ns)
    }
    fn wheel_cascade(&self, entries: u64) {
        (**self).wheel_cascade(entries)
    }
    fn wheel_fire(&self, task: usize, live: bool) {
        (**self).wheel_fire(task, live)
    }
    fn burst(&self, q: usize, n: u64) {
        (**self).burst(q, n)
    }
    fn marker(&self, kind: MarkerKind, a: u64) {
        (**self).marker(kind, a)
    }
}

/// One recorder's published state: its ring contents at the last flush
/// plus overflow, per-kind recorded counts, and the three histograms.
#[derive(Clone, Debug)]
pub struct WorkerTrace {
    /// Recorder index (worker on the thread backend, shard on the async
    /// backend, control-plane slots after those).
    pub worker: usize,
    /// Stored events, oldest first, timestamps nondecreasing.
    pub events: Vec<TraceEvent>,
    /// Events lost to drop-oldest overflow (exact).
    pub dropped: u64,
    /// Events recorded per kind (index = kind code; survives overflow).
    pub kind_counts: Vec<u64>,
    /// Wake-to-first-poll latency, nanoseconds.
    pub wake_latency: Histogram,
    /// Sleep-service oversleep, nanoseconds. The sum over records equals
    /// the values handed to [`TelemetrySink::overslept`] exactly.
    pub oversleep: Histogram,
    /// Ready-to-scheduled delay, nanoseconds.
    pub sched_delay: Histogram,
}

impl WorkerTrace {
    /// An empty trace for recorder `worker`.
    pub fn empty(worker: usize) -> WorkerTrace {
        WorkerTrace {
            worker,
            events: Vec::new(),
            dropped: 0,
            kind_counts: vec![0; N_EVENT_KINDS],
            wake_latency: Histogram::latency(),
            oversleep: Histogram::latency(),
            sched_delay: Histogram::latency(),
        }
    }

    /// Recorded events of `kind` (survives ring overflow).
    pub fn kind_count(&self, kind: TraceEventKind) -> u64 {
        self.kind_counts[kind as usize]
    }
}

struct RecorderInner {
    ring: TraceRing,
    wake_latency: Histogram,
    oversleep: Histogram,
    sched_delay: Histogram,
    since_flush: u32,
}

impl RecorderInner {
    fn publish(&self, worker: usize, slot: &mut WorkerTrace) {
        slot.worker = worker;
        slot.events = self.ring.ordered();
        slot.dropped = self.ring.dropped();
        slot.kind_counts = self.ring.kind_counts.to_vec();
        slot.wake_latency = self.wake_latency.clone();
        slot.oversleep = self.oversleep.clone();
        slot.sched_delay = self.sched_delay.clone();
    }
}

/// Per-worker flight recorder: a [`TraceRing`] plus histograms behind a
/// `RefCell` (the worker is the only borrower — recorders are `Send`,
/// not `Sync`), publishing to its hub slot every [`FLUSH_EVERY`] events
/// via `try_lock` (never blocking the worker) and unconditionally on
/// drop.
pub struct TraceRecorder {
    worker: usize,
    /// Amortized timestamp source anchored on the hub epoch: boundary
    /// events (verdicts, sleeps, parks, scheduler picks, markers) take one
    /// precise read; payload events inside a turn (bursts, wheel traffic)
    /// reuse it. Cached reads are monotone, so per-worker event streams
    /// stay sorted — the dump-merge invariant the proptests pin down.
    clock: CoarseClock,
    slot: Arc<Mutex<WorkerTrace>>,
    inner: RefCell<RecorderInner>,
}

impl TraceRecorder {
    /// The recorder's index in its hub.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Record with one precise clock read (turn/sleep/sched boundaries).
    fn record(&self, kind: TraceEventKind, a: u64, b: u64) {
        let ts_ns = self.clock.tick().as_nanos();
        self.record_at(ts_ns, kind, a, b);
    }

    /// Record against the last boundary's timestamp — no clock read. Used
    /// by the high-frequency payload events (bursts, timer-wheel traffic),
    /// whose rate is what the flight recorder is measuring in the first
    /// place. Staleness is bounded by one turn; the first event on a fresh
    /// recorder still takes a precise read so nothing is stamped at the
    /// epoch.
    fn record_coarse(&self, kind: TraceEventKind, a: u64, b: u64) {
        let cached = self.clock.cached();
        let ts_ns = if cached.is_zero() {
            self.clock.tick().as_nanos()
        } else {
            cached.as_nanos()
        };
        self.record_at(ts_ns, kind, a, b);
    }

    fn record_at(&self, ts_ns: u64, kind: TraceEventKind, a: u64, b: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.ring.push(TraceEvent { ts_ns, kind, a, b });
        inner.since_flush += 1;
        if inner.since_flush >= FLUSH_EVERY {
            inner.since_flush = 0;
            // Opportunistic publication: a contended slot (a dump in
            // progress) skips the flush rather than stall the worker.
            if let Ok(mut slot) = self.slot.try_lock() {
                inner.publish(self.worker, &mut slot);
            }
        }
    }

    /// Publish the current state to the hub slot, blocking on the slot
    /// lock (control-plane use; workers flush opportunistically).
    pub fn flush(&self) {
        let inner = self.inner.borrow();
        if let Ok(mut slot) = self.slot.lock() {
            inner.publish(self.worker, &mut slot);
        }
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

impl TraceSink for TraceRecorder {
    fn turn_verdict(&self, verdict: TraceVerdict) {
        self.record(TraceEventKind::TurnVerdict, verdict.code(), 0);
    }

    fn sleep(&self, requested: Nanos, actual: Nanos, overslept: Nanos) {
        self.inner
            .borrow_mut()
            .oversleep
            .record(overslept.as_nanos());
        self.record(
            TraceEventKind::Sleep,
            requested.as_nanos(),
            actual.as_nanos(),
        );
    }

    fn park(&self) {
        self.record(TraceEventKind::Park, 0, 0);
    }

    fn unpark(&self, parked: Nanos) {
        self.record(TraceEventKind::Unpark, parked.as_nanos(), 0);
    }

    fn first_poll(&self, wake_latency: Nanos) {
        self.inner
            .borrow_mut()
            .wake_latency
            .record(wake_latency.as_nanos());
        self.record(TraceEventKind::FirstPoll, wake_latency.as_nanos(), 0);
    }

    fn slice_begin(&self, task: usize, vruntime: u64) {
        self.record(TraceEventKind::SliceBegin, task as u64, vruntime);
    }

    fn slice_end(&self, task: usize, busy: Nanos) {
        self.record(TraceEventKind::SliceEnd, task as u64, busy.as_nanos());
    }

    fn sched_pick(&self, task: usize, delay: Nanos) {
        self.inner.borrow_mut().sched_delay.record(delay.as_nanos());
        self.record(TraceEventKind::SchedPick, task as u64, delay.as_nanos());
    }

    fn wheel_insert(&self, task: usize, deadline_ns: u64) {
        self.record_coarse(TraceEventKind::WheelInsert, task as u64, deadline_ns);
    }

    fn wheel_cascade(&self, entries: u64) {
        self.record_coarse(TraceEventKind::WheelCascade, entries, 0);
    }

    fn wheel_fire(&self, task: usize, live: bool) {
        self.record_coarse(TraceEventKind::WheelFire, task as u64, live as u64);
    }

    fn burst(&self, q: usize, n: u64) {
        self.record_coarse(TraceEventKind::Burst, q as u64, n);
    }

    fn marker(&self, kind: MarkerKind, a: u64) {
        let k = match kind {
            MarkerKind::Reconfigure => TraceEventKind::Reconfigure,
            MarkerKind::FaultPlan => TraceEventKind::FaultPlan,
        };
        self.record(k, a, 0);
    }
}

/// The hub a scenario's recorders publish into: one slot per recorder
/// plus the shared epoch every timestamp is relative to.
#[derive(Debug)]
pub struct TraceHub {
    label: String,
    epoch: Instant,
    capacity: usize,
    slots: Vec<Arc<Mutex<WorkerTrace>>>,
}

impl TraceHub {
    /// A hub with `n_recorders` slots and per-recorder ring `capacity`.
    pub fn new(n_recorders: usize, capacity: usize) -> TraceHub {
        TraceHub::labeled(n_recorders, capacity, "metronome")
    }

    /// [`TraceHub::new`] with a process label for the Chrome dump.
    pub fn labeled(n_recorders: usize, capacity: usize, label: &str) -> TraceHub {
        TraceHub {
            label: label.to_string(),
            epoch: Instant::now(),
            capacity,
            slots: (0..n_recorders)
                .map(|w| Arc::new(Mutex::new(WorkerTrace::empty(w))))
                .collect(),
        }
    }

    /// Number of recorder slots.
    pub fn n_recorders(&self) -> usize {
        self.slots.len()
    }

    /// Per-recorder ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The process label used in dumps.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Build the recorder for slot `worker`. Each slot should have
    /// exactly one live recorder; a second recorder for the same slot
    /// (e.g. after a re-arm) simply replaces the published state.
    ///
    /// # Panics
    /// If `worker` is out of range.
    pub fn recorder(&self, worker: usize) -> TraceRecorder {
        TraceRecorder {
            worker,
            clock: CoarseClock::from_epoch(self.epoch),
            slot: Arc::clone(&self.slots[worker]),
            inner: RefCell::new(RecorderInner {
                ring: TraceRing::new(self.capacity),
                wake_latency: Histogram::latency(),
                oversleep: Histogram::latency(),
                sched_delay: Histogram::latency(),
                since_flush: 0,
            }),
        }
    }

    /// Snapshot every slot's last-published state. Complete after the
    /// recorders have dropped; at most [`FLUSH_EVERY`] events stale per
    /// worker while they run.
    pub fn dump(&self) -> TraceDump {
        TraceDump {
            label: self.label.clone(),
            workers: self
                .slots
                .iter()
                .map(|s| {
                    s.lock()
                        .map(|g| g.clone())
                        .unwrap_or_else(|p| p.into_inner().clone())
                })
                .collect(),
        }
    }
}

/// A merged snapshot of every recorder's published state.
#[derive(Clone, Debug)]
pub struct TraceDump {
    /// Process label (Chrome dump process name).
    pub label: String,
    /// One entry per recorder slot, in slot order.
    pub workers: Vec<WorkerTrace>,
}

impl TraceDump {
    /// All stored events as `(worker, event)`, globally sorted by
    /// timestamp. The sort is stable, so each worker's own (already
    /// nondecreasing) order is preserved.
    pub fn merged(&self) -> Vec<(usize, TraceEvent)> {
        let mut all: Vec<(usize, TraceEvent)> = self
            .workers
            .iter()
            .flat_map(|w| w.events.iter().map(|&e| (w.worker, e)))
            .collect();
        all.sort_by_key(|(_, e)| e.ts_ns);
        all
    }

    /// Stored events across all workers.
    pub fn total_events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Overflow-dropped events across all workers (exact).
    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Recorded events of `kind` across all workers (survives ring
    /// overflow — this is the number that reconciles against hub
    /// counters).
    pub fn kind_count(&self, kind: TraceEventKind) -> u64 {
        self.workers.iter().map(|w| w.kind_count(kind)).sum()
    }

    /// Merged wake-to-first-poll histogram (nanoseconds).
    pub fn wake_latency(&self) -> Histogram {
        self.merged_hist(|w| &w.wake_latency)
    }

    /// Merged oversleep histogram (nanoseconds).
    pub fn oversleep(&self) -> Histogram {
        self.merged_hist(|w| &w.oversleep)
    }

    /// Merged scheduler-delay histogram (nanoseconds).
    pub fn sched_delay(&self) -> Histogram {
        self.merged_hist(|w| &w.sched_delay)
    }

    fn merged_hist<'a>(&'a self, pick: impl Fn(&'a WorkerTrace) -> &'a Histogram) -> Histogram {
        let mut h = Histogram::latency();
        for w in &self.workers {
            h.merge(pick(w));
        }
        h
    }

    /// Per-worker summary (counts, overflow, per-kind breakdown) — the
    /// daemon `trace` reply body.
    pub fn summary_json(&self) -> Json {
        let workers: Vec<Json> = self
            .workers
            .iter()
            .map(|w| {
                let mut kinds = Json::obj();
                for kind in TraceEventKind::ALL {
                    let n = w.kind_count(kind);
                    if n > 0 {
                        kinds.push(kind.label(), n);
                    }
                }
                Json::obj()
                    .with("worker", w.worker)
                    .with("events", w.events.len() as u64)
                    .with("recorded", w.kind_counts.iter().sum::<u64>())
                    .with("dropped", w.dropped)
                    .with("kinds", kinds)
            })
            .collect();
        Json::obj()
            .with("label", self.label.as_str())
            .with("events", self.total_events() as u64)
            .with("dropped", self.total_dropped())
            .with("workers", Json::Arr(workers))
    }

    /// Render the dump as a Chrome trace-event JSON document
    /// (`chrome://tracing` / Perfetto loadable): one process named after
    /// the hub label, one named thread per recorder, `ts`/`dur` in
    /// microseconds. Sleeps and slices render as complete (`"X"`) spans
    /// — the ring records their *end*, so the span is back-dated by its
    /// duration — and everything else as thread-scoped instants.
    pub fn chrome_json(&self) -> Json {
        let us = |ns: u64| Json::Float(ns as f64 / 1e3);
        let mut events: Vec<Json> =
            Vec::with_capacity(self.total_events() + self.workers.len() + 1);
        events.push(
            Json::obj()
                .with("name", "process_name")
                .with("ph", "M")
                .with("pid", 1u64)
                .with("tid", 0u64)
                .with("args", Json::obj().with("name", self.label.as_str())),
        );
        for w in &self.workers {
            events.push(
                Json::obj()
                    .with("name", "thread_name")
                    .with("ph", "M")
                    .with("pid", 1u64)
                    .with("tid", w.worker as u64)
                    .with(
                        "args",
                        Json::obj().with("name", format!("worker-{}", w.worker).as_str()),
                    ),
            );
        }
        for w in &self.workers {
            let tid = w.worker as u64;
            for e in &w.events {
                let base = |name: &str, ph: &str, ts_ns: u64| {
                    Json::obj()
                        .with("name", name)
                        .with("cat", "trace")
                        .with("ph", ph)
                        .with("pid", 1u64)
                        .with("tid", tid)
                        .with("ts", us(ts_ns))
                };
                let ev = match e.kind {
                    TraceEventKind::Sleep => base("sleep", "X", e.ts_ns.saturating_sub(e.b))
                        .with("dur", us(e.b))
                        .with(
                            "args",
                            Json::obj().with("requested_ns", e.a).with("actual_ns", e.b),
                        ),
                    TraceEventKind::SliceEnd => base("slice", "X", e.ts_ns.saturating_sub(e.b))
                        .with("dur", us(e.b))
                        .with("args", Json::obj().with("task", e.a).with("busy_ns", e.b)),
                    kind => base(kind.label(), "i", e.ts_ns)
                        .with("s", "t")
                        .with("args", Json::obj().with("a", e.a).with("b", e.b)),
                };
                events.push(ev);
            }
        }
        Json::obj()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ns")
    }
}

/// A [`TelemetrySink`] combinator that forwards every event to an inner
/// sink and additionally records the trace-grade ones into a
/// [`TraceSink`] — the seam that keeps trace events and hub counters
/// reconciled: each `retrieved` call produces exactly one hub `bursts`
/// increment *and* one [`TraceEventKind::Burst`] record.
#[derive(Clone, Copy, Debug)]
pub struct TracedSink<S, R> {
    sink: S,
    trace: R,
}

impl<S: TelemetrySink, R: TraceSink> TracedSink<S, R> {
    /// Wrap `sink`, mirroring trace-grade events into `trace`.
    pub fn new(sink: S, trace: R) -> TracedSink<S, R> {
        TracedSink { sink, trace }
    }
}

impl<S: TelemetrySink, R: TraceSink> TelemetrySink for TracedSink<S, R> {
    fn phase(&self, phase: PhaseKind) {
        self.sink.phase(phase)
    }
    fn wake(&self) {
        self.sink.wake()
    }
    fn sleep_planned(&self, kind: SleepKind, planned: Nanos) {
        self.sink.sleep_planned(kind, planned)
    }
    fn busy(&self, dur: Nanos) {
        self.sink.busy(dur)
    }
    fn slept(&self, dur: Nanos) {
        self.sink.slept(dur)
    }
    fn overslept(&self, dur: Nanos) {
        self.sink.overslept(dur)
    }
    fn retrieved(&self, q: usize, n: u64) {
        self.trace.burst(q, n);
        self.sink.retrieved(q, n)
    }
    fn dropped(&self, q: usize, cause: DropCause, n: u64) {
        self.sink.dropped(q, cause, n)
    }
    fn ts_update(&self, q: usize, ts: Nanos) {
        self.sink.ts_update(q, ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: TraceEventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn ring_stores_in_order_below_capacity() {
        let mut r = TraceRing::new(8);
        for i in 0..5 {
            r.push(ev(i, TraceEventKind::Burst, i, 0));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let got: Vec<u64> = r.ordered().iter().map(|e| e.ts_ns).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts_exactly() {
        let mut r = TraceRing::new(4);
        for i in 0..11 {
            r.push(ev(i, TraceEventKind::Burst, i, 0));
        }
        assert_eq!(r.len(), 4, "capacity bound holds");
        assert_eq!(r.dropped(), 7, "exactly pushes-minus-capacity dropped");
        let got: Vec<u64> = r.ordered().iter().map(|e| e.ts_ns).collect();
        assert_eq!(
            got,
            vec![7, 8, 9, 10],
            "the newest events survive, in order"
        );
        assert_eq!(
            r.kind_count(TraceEventKind::Burst),
            11,
            "recorded count survives overflow"
        );
        assert_eq!(r.recorded(), 11);
    }

    #[test]
    fn recorder_publishes_on_drop_and_hub_merges() {
        let hub = TraceHub::new(2, 16);
        for w in 0..2 {
            let rec = hub.recorder(w);
            rec.burst(w, 32);
            rec.turn_verdict(TraceVerdict::Continue);
            drop(rec); // deposits into the slot
        }
        let dump = hub.dump();
        assert_eq!(dump.workers.len(), 2);
        assert_eq!(dump.kind_count(TraceEventKind::Burst), 2);
        assert_eq!(dump.kind_count(TraceEventKind::TurnVerdict), 2);
        assert_eq!(dump.total_events(), 4);
        assert_eq!(dump.total_dropped(), 0);
        // Both workers contributed to the merge.
        let merged = dump.merged();
        assert_eq!(merged.len(), 4);
        let mut seen: Vec<usize> = merged.iter().map(|(w, _)| *w).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn histograms_record_and_reconcile() {
        let hub = TraceHub::new(1, 16);
        let rec = hub.recorder(0);
        rec.sleep(
            Nanos::from_micros(10),
            Nanos::from_micros(13),
            Nanos::from_micros(3),
        );
        rec.sleep(Nanos::from_micros(10), Nanos::from_micros(10), Nanos::ZERO);
        rec.first_poll(Nanos::from_micros(5));
        rec.sched_pick(0, Nanos::from_micros(7));
        drop(rec);
        let dump = hub.dump();
        let over = dump.oversleep();
        assert_eq!(over.count(), 2, "one oversleep record per sleep");
        assert_eq!(
            over.sum(),
            3_000,
            "histogram sum equals the overslept total"
        );
        assert_eq!(dump.wake_latency().count(), 1);
        assert_eq!(dump.sched_delay().count(), 1);
        assert_eq!(dump.kind_count(TraceEventKind::Sleep), 2);
        assert_eq!(dump.kind_count(TraceEventKind::FirstPoll), 1);
        assert_eq!(dump.kind_count(TraceEventKind::SchedPick), 1);
    }

    #[test]
    fn traced_sink_mirrors_bursts_only() {
        use crate::counters::TelemetryHub;
        use std::sync::atomic::Ordering;
        let counters = TelemetryHub::new(1, 2);
        let trace_hub = TraceHub::new(1, 16);
        {
            let sink = TracedSink::new(counters.worker_sink(0), trace_hub.recorder(0));
            sink.retrieved(1, 32);
            sink.retrieved(0, 16);
            sink.wake();
            sink.overslept(Nanos::from_micros(1));
        }
        let dump = trace_hub.dump();
        let hub_bursts = counters.queue(0).bursts.load(Ordering::Relaxed)
            + counters.queue(1).bursts.load(Ordering::Relaxed);
        assert_eq!(
            dump.kind_count(TraceEventKind::Burst),
            hub_bursts,
            "burst events reconcile with the hub bursts counter"
        );
        assert_eq!(
            dump.total_events(),
            2,
            "non-burst sink events record nothing"
        );
    }

    #[test]
    fn chrome_dump_is_valid_and_carries_required_fields() {
        let hub = TraceHub::labeled(2, 16, "test-run");
        for w in 0..2 {
            let rec = hub.recorder(w);
            rec.burst(w, 32);
            rec.sleep(
                Nanos::from_micros(10),
                Nanos::from_micros(12),
                Nanos::from_micros(2),
            );
            rec.slice_begin(w, 5);
            rec.slice_end(w, Nanos::from_micros(4));
        }
        let doc = hub.dump().chrome_json().render();
        let parsed = Json::parse(&doc).expect("chrome dump is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 1 process + 2 thread metadata + 8 events.
        assert_eq!(events.len(), 11);
        for e in events {
            for field in ["ph", "pid", "tid"] {
                assert!(e.get(field).is_some(), "missing {field} in {e:?}");
            }
            if e.get("ph").and_then(Json::as_str) != Some("M") {
                assert!(e.get("ts").is_some(), "non-metadata event missing ts");
            }
        }
        // Spans are back-dated, never negative.
        assert!(events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .all(|e| e.get("ts").and_then(Json::as_f64).unwrap() >= 0.0));
    }

    #[test]
    fn live_dump_sees_flushed_state_without_blocking_recorder() {
        let hub = TraceHub::new(1, 8192);
        let rec = hub.recorder(0);
        // Fewer than FLUSH_EVERY events: nothing published yet.
        rec.burst(0, 1);
        assert_eq!(hub.dump().total_events(), 0);
        for _ in 0..FLUSH_EVERY {
            rec.burst(0, 1);
        }
        let dump = hub.dump();
        assert!(
            dump.total_events() >= FLUSH_EVERY as usize,
            "flush boundary published"
        );
        rec.flush();
        assert_eq!(
            hub.dump().kind_count(TraceEventKind::Burst),
            FLUSH_EVERY as u64 + 1
        );
    }
}
