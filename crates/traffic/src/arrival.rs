//! Arrival processes: the traffic side of the hybrid analytic/DES design.
//!
//! The simulator never schedules one event per packet — at 14.88 Mpps that
//! would dwarf every other cost. Instead each Rx queue owns an
//! [`ArrivalProcess`] that is *drained* lazily: whenever a thread polls the
//! queue at time `t`, the runtime asks the process how many packets arrived
//! since the previous poll (optionally with their timestamps, for latency
//! sampling). Between polls nothing happens, so simulation cost scales with
//! thread wake-ups, not with packets.
//!
//! Implementations:
//! * [`Cbr`] — constant bit rate, MoonGen's default mode and the paper's
//!   line-rate workload;
//! * [`Poisson`] — memoryless arrivals for model-validation runs;
//! * [`Staircase`] — piecewise-CBR schedules (the Fig. 9 up/down ramp);
//! * [`OnOff`] — bursty on/off modulation (burst-reactivity comparisons
//!   against XDP, §V-D).

use metronome_sim::{Nanos, Rng};

/// A stream of packet arrival instants, consumed monotonically.
///
/// `Send` is a supertrait so a boxed process can move onto a generator
/// shard thread (sharded realtime ingest paces each flow partition's
/// slice on its own producer thread). Every process is plain state plus
/// an owned PRNG stream, so this costs implementors nothing.
pub trait ArrivalProcess: Send {
    /// Consume all arrivals with timestamp ≤ `until` and return their
    /// count. If `timestamps` is provided, push each arrival time into it
    /// (in order). Calling with a non-increasing `until` returns 0.
    fn drain(&mut self, until: Nanos, timestamps: Option<&mut Vec<Nanos>>) -> u64;

    /// Timestamp of the next pending arrival (after the current cursor),
    /// or `None` if the source is exhausted. Does not consume.
    fn peek_next(&mut self) -> Option<Nanos>;

    /// Nominal offered rate at `t`, packets per second (for reporting).
    fn rate_pps(&self, t: Nanos) -> f64;
}

/// A boxed process is still a process (lets wrappers like
/// `faults::PlannedFaults` compose over `Box<dyn ArrivalProcess>`).
impl<A: ArrivalProcess + ?Sized> ArrivalProcess for Box<A> {
    fn drain(&mut self, until: Nanos, timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        (**self).drain(until, timestamps)
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        (**self).peek_next()
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        (**self).rate_pps(t)
    }
}

/// Constant-rate arrivals: packet `k` arrives at `start + k/rate`.
///
/// Uses exact index arithmetic (no accumulating float drift): over a
/// 60-second line-rate run the count error stays below one packet.
#[derive(Clone, Debug)]
pub struct Cbr {
    pps: f64,
    start: Nanos,
    end: Option<Nanos>,
    next_k: u64,
}

impl Cbr {
    /// CBR at `pps` packets/second beginning at `start`, unbounded.
    pub fn new(pps: f64, start: Nanos) -> Self {
        assert!(pps >= 0.0 && pps.is_finite());
        Cbr {
            pps,
            start,
            end: None,
            next_k: 0,
        }
    }

    /// CBR that stops offering packets at `end` (exclusive).
    pub fn until(pps: f64, start: Nanos, end: Nanos) -> Self {
        let mut c = Cbr::new(pps, start);
        c.end = Some(end);
        c
    }

    #[inline]
    fn time_of(&self, k: u64) -> Nanos {
        self.start + Nanos((k as f64 * 1e9 / self.pps).round() as u64)
    }

    /// Index of the first arrival strictly after `t` (i.e., arrivals with
    /// index < result are at or before `t`).
    fn count_upto(&self, t: Nanos) -> u64 {
        if self.pps <= 0.0 || t < self.start {
            return 0;
        }
        let span = (t - self.start).as_nanos() as f64;
        let mut k = (span * self.pps / 1e9).floor() as u64 + 1;
        // Float boundaries: nudge until exact w.r.t. time_of.
        while k > 0 && self.time_of(k - 1) > t {
            k -= 1;
        }
        while self.time_of(k) <= t {
            k += 1;
        }
        k
    }
}

impl ArrivalProcess for Cbr {
    fn drain(&mut self, until: Nanos, timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        if self.pps <= 0.0 {
            return 0;
        }
        let horizon = match self.end {
            Some(e) if until >= e => e.saturating_sub(Nanos(1)),
            _ => until,
        };
        let k_end = self.count_upto(horizon);
        if k_end <= self.next_k {
            return 0;
        }
        let n = k_end - self.next_k;
        if let Some(out) = timestamps {
            for k in self.next_k..k_end {
                out.push(self.time_of(k));
            }
        }
        self.next_k = k_end;
        n
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        if self.pps <= 0.0 {
            return None;
        }
        let t = self.time_of(self.next_k);
        match self.end {
            Some(e) if t >= e => None,
            _ => Some(t),
        }
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        match self.end {
            Some(e) if t >= e => 0.0,
            _ if t < self.start => 0.0,
            _ => self.pps,
        }
    }
}

/// CBR shaped into micro-bursts: groups of `group` packets arrive
/// back-to-back at wire spacing, with groups paced to the average rate.
///
/// This is how software packet generators actually emit sub-line-rate
/// CBR: MoonGen's rate control releases DMA batches, so "0.5 Gbps CBR"
/// reaches the NIC as ~32-packet trains every ~43 µs rather than one
/// packet every 1.3 µs. The distinction matters for Tx-batching latency:
/// a receiver that forwards a full train immediately fills its 32-packet
/// Tx batch and flushes, while perfectly-paced arrivals would idle in the
/// batch buffer.
#[derive(Clone, Debug)]
pub struct BurstyCbr {
    pps: f64,
    group: u64,
    /// Gap between packets inside a group (the wire's back-to-back gap).
    intra_gap: Nanos,
    start: Nanos,
    next_k: u64,
}

impl BurstyCbr {
    /// Bursty CBR at `pps` average, `group` packets per train, with
    /// `intra_gap` between packets of a train.
    pub fn new(pps: f64, group: u64, intra_gap: Nanos, start: Nanos) -> Self {
        assert!(pps >= 0.0 && pps.is_finite());
        assert!(group >= 1);
        // The train must fit inside its period, or arrivals would overlap.
        if pps > 0.0 {
            let period = group as f64 * 1e9 / pps;
            assert!(
                (group - 1) as f64 * intra_gap.as_nanos() as f64 <= period,
                "burst train longer than its period"
            );
        }
        BurstyCbr {
            pps,
            group,
            intra_gap,
            start,
            next_k: 0,
        }
    }

    #[inline]
    fn time_of(&self, k: u64) -> Nanos {
        let g = k / self.group;
        let i = k % self.group;
        let group_start = (g as f64 * self.group as f64 * 1e9 / self.pps).round() as u64;
        self.start + Nanos(group_start) + self.intra_gap.scaled(i)
    }

    fn count_upto(&self, t: Nanos) -> u64 {
        if self.pps <= 0.0 || t < self.start {
            return 0;
        }
        let period = self.group as f64 * 1e9 / self.pps;
        let span = (t - self.start).as_nanos() as f64;
        let mut k = ((span / period).floor() as u64 + 1) * self.group;
        while k > 0 && self.time_of(k - 1) > t {
            k -= 1;
        }
        while self.time_of(k) <= t {
            k += 1;
        }
        k
    }
}

impl ArrivalProcess for BurstyCbr {
    fn drain(&mut self, until: Nanos, timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        if self.pps <= 0.0 {
            return 0;
        }
        let k_end = self.count_upto(until);
        if k_end <= self.next_k {
            return 0;
        }
        let n = k_end - self.next_k;
        if let Some(out) = timestamps {
            for k in self.next_k..k_end {
                out.push(self.time_of(k));
            }
        }
        self.next_k = k_end;
        n
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        if self.pps <= 0.0 {
            None
        } else {
            Some(self.time_of(self.next_k))
        }
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        if t < self.start {
            0.0
        } else {
            self.pps
        }
    }
}

/// Poisson arrivals with a given mean rate.
#[derive(Clone, Debug)]
pub struct Poisson {
    pps: f64,
    rng: Rng,
    /// The next pending arrival instant.
    pending: Nanos,
}

impl Poisson {
    /// Poisson process at `pps`, starting at `start`.
    pub fn new(pps: f64, start: Nanos, rng: Rng) -> Self {
        assert!(pps > 0.0 && pps.is_finite());
        let mut p = Poisson {
            pps,
            rng,
            pending: start,
        };
        p.advance();
        p
    }

    fn advance(&mut self) {
        let gap = self.rng.exp(1e9 / self.pps); // mean inter-arrival in ns
        self.pending = self.pending.saturating_add(Nanos(gap.max(0.0) as u64));
    }
}

impl ArrivalProcess for Poisson {
    fn drain(&mut self, until: Nanos, mut timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        let mut n = 0;
        while self.pending <= until {
            if let Some(out) = timestamps.as_deref_mut() {
                out.push(self.pending);
            }
            n += 1;
            self.advance();
        }
        n
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        Some(self.pending)
    }

    fn rate_pps(&self, _t: Nanos) -> f64 {
        self.pps
    }
}

/// A piecewise-constant rate schedule built from `(start_time, pps)` steps.
///
/// [`Staircase::ramp_up_down`] reproduces the Fig. 9 workload: "Moongen
/// increases the sending rate every 2 seconds until 14 Mpps of rate is
/// reached at about 30 seconds, and then it starts decreasing".
#[derive(Clone, Debug)]
pub struct Staircase {
    /// (segment start, rate) pairs, strictly increasing in time.
    steps: Vec<(Nanos, f64)>,
    /// Index of the active segment.
    seg: usize,
    /// Generator for the active segment.
    current: Cbr,
}

impl Staircase {
    /// Build from explicit steps (must be non-empty, increasing in time).
    pub fn new(steps: Vec<(Nanos, f64)>) -> Self {
        assert!(!steps.is_empty(), "empty staircase");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "steps must increase in time"
        );
        let current = Cbr::new(steps[0].1, steps[0].0);
        Staircase {
            steps,
            seg: 0,
            current,
        }
    }

    /// Symmetric up/down ramp: rate climbs from `peak/steps` to `peak` in
    /// equal steps of `step_dur`, then descends again. Total duration
    /// `2 * steps * step_dur`.
    pub fn ramp_up_down(peak_pps: f64, n_steps: usize, step_dur: Nanos) -> Self {
        assert!(n_steps >= 1);
        let mut steps = Vec::with_capacity(2 * n_steps);
        for i in 0..n_steps {
            let t = step_dur.scaled(i as u64);
            let r = peak_pps * (i + 1) as f64 / n_steps as f64;
            steps.push((t, r));
        }
        for i in 0..n_steps {
            let t = step_dur.scaled((n_steps + i) as u64);
            let r = peak_pps * (n_steps - i - 1) as f64 / n_steps as f64;
            steps.push((t, r.max(0.0)));
        }
        Staircase::new(steps)
    }

    fn segment_end(&self, idx: usize) -> Option<Nanos> {
        self.steps.get(idx + 1).map(|&(t, _)| t)
    }

    fn roll_segment(&mut self) -> bool {
        if self.seg + 1 >= self.steps.len() {
            return false;
        }
        self.seg += 1;
        let (t, r) = self.steps[self.seg];
        self.current = Cbr::new(r, t);
        true
    }
}

impl ArrivalProcess for Staircase {
    fn drain(&mut self, until: Nanos, mut timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        let mut total = 0;
        loop {
            let horizon = match self.segment_end(self.seg) {
                Some(end) if until >= end => end.saturating_sub(Nanos(1)),
                _ => until,
            };
            total += self.current.drain(horizon, timestamps.as_deref_mut());
            match self.segment_end(self.seg) {
                Some(end) if until >= end => {
                    if !self.roll_segment() {
                        break;
                    }
                }
                _ => break,
            }
        }
        total
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        loop {
            match self.current.peek_next() {
                Some(t) => match self.segment_end(self.seg) {
                    Some(end) if t >= end => {
                        if !self.roll_segment() {
                            return None;
                        }
                    }
                    _ => return Some(t),
                },
                None => {
                    if !self.roll_segment() {
                        return None;
                    }
                }
            }
        }
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        let mut rate = 0.0;
        for &(start, r) in &self.steps {
            if t >= start {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }
}

/// On/off burst modulation: CBR at `burst_pps` for `on` time, silence for
/// `off` time, repeating.
#[derive(Clone, Debug)]
pub struct OnOff {
    burst_pps: f64,
    on: Nanos,
    off: Nanos,
    /// Start of the current on-period.
    period_start: Nanos,
    current: Cbr,
}

impl OnOff {
    /// Bursty source starting (on) at time zero.
    pub fn new(burst_pps: f64, on: Nanos, off: Nanos) -> Self {
        assert!(!on.is_zero(), "zero on-period");
        OnOff {
            burst_pps,
            on,
            off,
            period_start: Nanos::ZERO,
            current: Cbr::until(burst_pps, Nanos::ZERO, on),
        }
    }

    fn roll(&mut self) {
        self.period_start = self.period_start + self.on + self.off;
        self.current = Cbr::until(
            self.burst_pps,
            self.period_start,
            self.period_start + self.on,
        );
    }
}

impl ArrivalProcess for OnOff {
    fn drain(&mut self, until: Nanos, mut timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        let mut total = 0;
        loop {
            total += self.current.drain(until, timestamps.as_deref_mut());
            // Move to the next period only once this one is fully behind us.
            if until >= self.period_start + self.on + self.off {
                self.roll();
            } else {
                break;
            }
        }
        total
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        loop {
            match self.current.peek_next() {
                Some(t) => return Some(t),
                None => self.roll(),
            }
        }
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        let cycle = (self.on + self.off).as_nanos();
        if cycle == 0 {
            return self.burst_pps;
        }
        let phase = t.as_nanos() % cycle;
        if phase < self.on.as_nanos() {
            self.burst_pps
        } else {
            0.0
        }
    }
}

/// A silent source (zero traffic), for the idle-power experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct Silent;

impl ArrivalProcess for Silent {
    fn drain(&mut self, _until: Nanos, _timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        0
    }
    fn peek_next(&mut self) -> Option<Nanos> {
        None
    }
    fn rate_pps(&self, _t: Nanos) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_counts_exactly() {
        let mut c = Cbr::new(1_000_000.0, Nanos::ZERO); // 1 Mpps = 1/µs
        assert_eq!(c.drain(Nanos::from_micros(10), None), 11); // k=0 at t=0
        assert_eq!(c.drain(Nanos::from_micros(10), None), 0); // idempotent
        assert_eq!(c.drain(Nanos::from_micros(20), None), 10);
    }

    #[test]
    fn cbr_no_drift_at_line_rate() {
        // 14.88 Mpps for 2 simulated seconds, drained in irregular chunks.
        let pps = 14_880_952.38;
        let mut c = Cbr::new(pps, Nanos::ZERO);
        let mut total = 0;
        let mut t = Nanos::ZERO;
        let mut step = 13_537u64; // irregular ns step
        while t < Nanos::from_secs(2) {
            t += Nanos(step);
            step = step % 31_013 + 7_001;
            total += c.drain(t, None);
        }
        let expect = (pps * t.as_secs_f64()).round();
        assert!(
            (total as f64 - expect).abs() <= 1.0,
            "drift: {total} vs {expect}"
        );
    }

    #[test]
    fn cbr_timestamps_are_ordered_and_bounded() {
        let mut c = Cbr::new(3_000_000.0, Nanos::from_micros(5));
        let mut ts = Vec::new();
        let n = c.drain(Nanos::from_micros(8), Some(&mut ts));
        assert_eq!(n as usize, ts.len());
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert!(ts
            .iter()
            .all(|&t| t >= Nanos::from_micros(5) && t <= Nanos::from_micros(8)));
    }

    #[test]
    fn cbr_peek_matches_drain() {
        let mut c = Cbr::new(2_000_000.0, Nanos::ZERO);
        let first = c.peek_next().unwrap();
        let mut ts = Vec::new();
        c.drain(first, Some(&mut ts));
        assert_eq!(ts, vec![first]);
    }

    #[test]
    fn cbr_until_stops() {
        let mut c = Cbr::until(1_000_000.0, Nanos::ZERO, Nanos::from_micros(5));
        let n = c.drain(Nanos::from_secs(1), None);
        assert_eq!(n, 5); // arrivals at 0,1,2,3,4 µs
        assert_eq!(c.peek_next(), None);
        assert_eq!(c.rate_pps(Nanos::from_secs(1)), 0.0);
    }

    #[test]
    fn zero_rate_cbr_is_silent() {
        let mut c = Cbr::new(0.0, Nanos::ZERO);
        assert_eq!(c.drain(Nanos::from_secs(100), None), 0);
        assert_eq!(c.peek_next(), None);
    }

    #[test]
    fn bursty_cbr_average_rate_exact() {
        let mut b = BurstyCbr::new(744_048.0, 32, Nanos(68), Nanos::ZERO);
        let n = b.drain(Nanos::from_secs(1), None);
        assert!((n as f64 - 744_048.0).abs() <= 32.0, "{n}");
    }

    #[test]
    fn bursty_cbr_trains_are_back_to_back() {
        let mut b = BurstyCbr::new(1e6, 4, Nanos(68), Nanos::ZERO);
        let mut ts = Vec::new();
        b.drain(Nanos::from_micros(5), Some(&mut ts));
        // First train: 0, 68, 136, 204 ns; second train starts at 4 µs.
        assert_eq!(ts[0], Nanos(0));
        assert_eq!(ts[1], Nanos(68));
        assert_eq!(ts[3], Nanos(204));
        assert_eq!(ts[4], Nanos(4_000));
    }

    #[test]
    fn bursty_cbr_peek_and_drain_agree() {
        let mut b = BurstyCbr::new(2e6, 8, Nanos(68), Nanos::from_micros(3));
        let first = b.peek_next().unwrap();
        assert_eq!(first, Nanos::from_micros(3));
        let mut ts = Vec::new();
        b.drain(first, Some(&mut ts));
        assert_eq!(ts, vec![first]);
    }

    #[test]
    #[should_panic(expected = "longer than its period")]
    fn bursty_cbr_rejects_overlapping_trains() {
        // 32 packets × 68 ns = 2.2 µs train at a 1 µs period: impossible.
        BurstyCbr::new(32e6, 32, Nanos(68), Nanos::ZERO);
    }

    #[test]
    fn poisson_mean_rate() {
        let mut p = Poisson::new(1_000_000.0, Nanos::ZERO, Rng::new(42));
        let n = p.drain(Nanos::from_secs(1), None);
        // 1M expected, sd = 1000; allow 5 sigma.
        assert!((n as f64 - 1e6).abs() < 5_000.0, "poisson count {n}");
    }

    #[test]
    fn poisson_deterministic_given_seed() {
        let mut a = Poisson::new(1e6, Nanos::ZERO, Rng::new(7));
        let mut b = Poisson::new(1e6, Nanos::ZERO, Rng::new(7));
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        a.drain(Nanos::from_millis(1), Some(&mut ta));
        b.drain(Nanos::from_millis(1), Some(&mut tb));
        assert_eq!(ta, tb);
        assert!(!ta.is_empty());
    }

    #[test]
    fn staircase_rates_follow_schedule() {
        let s = Staircase::new(vec![
            (Nanos::ZERO, 1e6),
            (Nanos::from_secs(1), 2e6),
            (Nanos::from_secs(2), 0.0),
        ]);
        assert_eq!(s.rate_pps(Nanos::from_millis(500)), 1e6);
        assert_eq!(s.rate_pps(Nanos::from_millis(1500)), 2e6);
        assert_eq!(s.rate_pps(Nanos::from_secs(3)), 0.0);
    }

    #[test]
    fn staircase_counts_across_segments() {
        let mut s = Staircase::new(vec![
            (Nanos::ZERO, 1e6),           // 1/µs for 1 ms -> 1000
            (Nanos::from_millis(1), 2e6), // 2/µs for 1 ms -> 2000
        ]);
        let n = s.drain(Nanos::from_millis(2), None);
        assert!((n as i64 - 3000).unsigned_abs() <= 2, "{n}");
    }

    #[test]
    fn ramp_up_down_is_symmetric() {
        let s = Staircase::ramp_up_down(14e6, 15, Nanos::from_secs(2));
        // At t=29s we are at the peak; at t=1s and t=57s the same low rate.
        assert!((s.rate_pps(Nanos::from_secs(29)) - 14e6).abs() < 1.0);
        let early = s.rate_pps(Nanos::from_secs(1));
        let late = s.rate_pps(Nanos::from_secs(57));
        assert!(early > 0.0);
        // Up step i and down step are offset by one: just check decline.
        assert!(late < 14e6 * 0.2, "late rate {late}");
    }

    #[test]
    fn onoff_bursts_and_silences() {
        let mut o = OnOff::new(1e6, Nanos::from_millis(1), Nanos::from_millis(9));
        // One full cycle: 1 ms on at 1 Mpps = ~1000 packets.
        let n = o.drain(Nanos::from_millis(10), None);
        assert!((n as i64 - 1000).unsigned_abs() <= 1, "{n}");
        assert_eq!(o.rate_pps(Nanos::from_micros(500)), 1e6);
        assert_eq!(o.rate_pps(Nanos::from_millis(5)), 0.0);
        // Second cycle begins at 10 ms.
        let next = o.peek_next().unwrap();
        assert!(next >= Nanos::from_millis(10));
    }

    #[test]
    fn onoff_multi_cycle_totals() {
        let mut o = OnOff::new(2e6, Nanos::from_millis(1), Nanos::from_millis(1));
        // 10 cycles of 2 ms: 10 on-periods of 1 ms at 2 Mpps = 20000.
        let n = o.drain(Nanos::from_millis(20), None);
        assert!((n as i64 - 20_000).unsigned_abs() <= 10, "{n}");
    }

    #[test]
    fn silent_is_silent() {
        let mut s = Silent;
        assert_eq!(s.drain(Nanos::from_secs(1000), None), 0);
        assert_eq!(s.peek_next(), None);
    }
}
