//! Fault injection for arrival processes.
//!
//! Wraps any [`ArrivalProcess`] with generator-side imperfections: random
//! drops (a lossy cable or an overloaded generator) and timing
//! perturbation (software pacing error). Used by the robustness tests to
//! confirm that Metronome's estimator and the loss accounting degrade
//! gracefully rather than catastrophically when the offered stream itself
//! is imperfect.

use crate::arrival::ArrivalProcess;
use metronome_sim::{Nanos, Rng};

/// An arrival process with independent per-packet drop probability and
/// uniform ± jitter on each arrival instant.
pub struct FaultyArrivals<A> {
    inner: A,
    drop_prob: f64,
    jitter: Nanos,
    rng: Rng,
    buf: Vec<Nanos>,
    /// Packets suppressed by the injector so far.
    pub injected_drops: u64,
}

impl<A: ArrivalProcess> FaultyArrivals<A> {
    /// Wrap `inner`, dropping each packet with probability `drop_prob` and
    /// shifting each surviving arrival by up to ± `jitter` (clamped so the
    /// stream stays ordered within a drain window).
    pub fn new(inner: A, drop_prob: f64, jitter: Nanos, rng: Rng) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        FaultyArrivals {
            inner,
            drop_prob,
            jitter,
            rng,
            buf: Vec::new(),
            injected_drops: 0,
        }
    }
}

impl<A: ArrivalProcess> ArrivalProcess for FaultyArrivals<A> {
    fn drain(&mut self, until: Nanos, timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        // Jitter must not move arrivals past `until` (they would be lost to
        // this drain); pull the raw timestamps and filter/perturb.
        self.buf.clear();
        let raw = self.inner.drain(until, Some(&mut self.buf));
        let mut kept = 0;
        if let Some(out) = timestamps {
            for &t in &self.buf {
                if self.drop_prob > 0.0 && self.rng.chance(self.drop_prob) {
                    self.injected_drops += 1;
                    continue;
                }
                kept += 1;
                let jit = if self.jitter.is_zero() {
                    Nanos::ZERO
                } else {
                    Nanos(self.rng.below(self.jitter.as_nanos().max(1)))
                };
                // Shift backward only (stay ≤ until and keep order cheaply).
                out.push(t.saturating_sub(jit));
            }
        } else {
            for _ in 0..raw {
                if self.drop_prob > 0.0 && self.rng.chance(self.drop_prob) {
                    self.injected_drops += 1;
                } else {
                    kept += 1;
                }
            }
        }
        kept
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        self.inner.peek_next()
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        self.inner.rate_pps(t) * (1.0 - self.drop_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::Cbr;

    #[test]
    fn zero_faults_is_transparent() {
        let mut clean = Cbr::new(1e6, Nanos::ZERO);
        let mut faulty =
            FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.0, Nanos::ZERO, Rng::new(1));
        let t = Nanos::from_millis(3);
        assert_eq!(clean.drain(t, None), faulty.drain(t, None));
        assert_eq!(faulty.injected_drops, 0);
    }

    #[test]
    fn drop_probability_thins_the_stream() {
        let mut faulty =
            FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.25, Nanos::ZERO, Rng::new(2));
        let n = faulty.drain(Nanos::from_millis(100), None);
        // 100k offered, 25% dropped: expect ≈75k.
        assert!((n as f64 - 75_000.0).abs() < 1_500.0, "{n}");
        assert!((faulty.injected_drops as f64 - 25_000.0).abs() < 1_500.0);
    }

    #[test]
    fn effective_rate_reflects_drops() {
        let faulty = FaultyArrivals::new(Cbr::new(2e6, Nanos::ZERO), 0.5, Nanos::ZERO, Rng::new(3));
        assert!((faulty.rate_pps(Nanos::from_secs(1)) - 1e6).abs() < 1.0);
    }

    #[test]
    fn jitter_keeps_timestamps_in_window() {
        let mut faulty = FaultyArrivals::new(
            Cbr::new(1e6, Nanos::ZERO),
            0.0,
            Nanos::from_micros(3),
            Rng::new(4),
        );
        let until = Nanos::from_micros(500);
        let mut ts = Vec::new();
        faulty.drain(until, Some(&mut ts));
        assert!(!ts.is_empty());
        assert!(ts.iter().all(|&t| t <= until));
    }

    #[test]
    fn counts_match_with_and_without_timestamps() {
        // The kept-count must be deterministic per seed regardless of
        // whether the caller asked for timestamps.
        let mut a = FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.3, Nanos::ZERO, Rng::new(5));
        let mut b = FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.3, Nanos::ZERO, Rng::new(5));
        let t = Nanos::from_millis(5);
        let mut ts = Vec::new();
        let na = a.drain(t, Some(&mut ts));
        let nb = b.drain(t, None);
        assert_eq!(na, nb);
        assert_eq!(na as usize, ts.len());
    }
}
