//! Fault injection for arrival processes and soak runs.
//!
//! Two layers:
//!
//! * [`FaultyArrivals`] — the original always-on wrapper: independent
//!   per-packet drop probability plus uniform jitter, used by the
//!   robustness tests to confirm the estimator degrades gracefully when
//!   the offered stream itself is imperfect.
//! * [`FaultPlan`] — typed, seeded, *schedulable* fault events for
//!   soak/chaos runs: rate spikes, queue stalls (consumer pause), pool
//!   starvation, and generator jitter bursts, each a [`FaultEvent`]
//!   active over a `[at, at + duration)` window. The plan itself is pure
//!   bookkeeping (time-indexed queries), so both backends can realize it:
//!   the simulator wraps each queue's arrivals in [`PlannedFaults`], the
//!   realtime daemon polls the same queries from its generator and fault
//!   driver threads.
//!
//! Every packet a fault suppresses is counted through a shared
//! [`InjectionStats`] handle, so runs under fault injection still
//! reconcile exactly: the runner mirrors the counts into telemetry under
//! `DropCause::Fault` and the conservation identity
//! `offered == processed + dropped` keeps holding with drops split by
//! cause.

use crate::arrival::ArrivalProcess;
use metronome_sim::{Nanos, Rng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a scheduled fault does while its window is active.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Multiply the offered rate by `factor` (a flash crowd for
    /// `factor > 1`, a brown-out dip for `factor < 1`).
    RateSpike {
        /// Rate multiplier; must be finite and ≥ 0.
        factor: f64,
    },
    /// Pause the consumer side: arrivals keep coming but nothing is
    /// retrieved until the window ends (rings fill, then tail-drop). On
    /// the arrival-side realization the queued packets are released in a
    /// burst when the stall lifts — the upstream-buffering model.
    QueueStall,
    /// Starve the mempool: `fraction` of buffers are confiscated for the
    /// window (realtime), or equivalently each arrival is refused
    /// admission with probability `fraction` (sim).
    PoolStarve {
        /// Fraction of capacity taken away, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// Generator pacing degrades: surviving arrivals shift by up to
    /// `jitter` and each is lost with probability `drop_prob`.
    JitterBurst {
        /// Maximum backward timestamp shift.
        jitter: Nanos,
        /// Per-packet loss probability in `[0, 1]`.
        drop_prob: f64,
    },
}

impl FaultKind {
    /// Stable label for logs, tables, and the control protocol.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::RateSpike { .. } => "rate-spike",
            FaultKind::QueueStall => "queue-stall",
            FaultKind::PoolStarve { .. } => "pool-starve",
            FaultKind::JitterBurst { .. } => "jitter-burst",
        }
    }
}

/// One scheduled fault: `kind` is active over `[at, at + duration)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Window start (run-relative).
    pub at: Nanos,
    /// Window length.
    pub duration: Nanos,
    /// What happens during the window.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Window end (exclusive).
    pub fn end(&self) -> Nanos {
        Nanos(self.at.as_nanos().saturating_add(self.duration.as_nanos()))
    }

    /// Whether the window covers instant `t`.
    pub fn active_at(&self, t: Nanos) -> bool {
        t >= self.at && t < self.end()
    }
}

/// A schedule of typed fault events, queried by time. Events may overlap;
/// overlapping spikes multiply, overlapping starvation/jitter take the
/// worst case, and a stall holds as long as *any* stall window is active.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events (order irrelevant; queries scan).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; all queries return the identity).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style event add.
    pub fn with(mut self, at: Nanos, duration: Nanos, kind: FaultKind) -> Self {
        self.push(at, duration, kind);
        self
    }

    /// Add an event.
    pub fn push(&mut self, at: Nanos, duration: Nanos, kind: FaultKind) {
        if let FaultKind::RateSpike { factor } = kind {
            assert!(factor.is_finite() && factor >= 0.0, "bad spike factor");
        }
        if let FaultKind::JitterBurst { drop_prob, .. } = kind {
            assert!((0.0..=1.0).contains(&drop_prob), "bad drop probability");
        }
        self.events.push(FaultEvent { at, duration, kind });
    }

    /// Whether the plan holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of distinct fault kinds scheduled (labels, not parameters).
    pub fn distinct_kinds(&self) -> usize {
        let mut labels: Vec<&str> = self.events.iter().map(|e| e.kind.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// When the last scheduled window ends ([`Nanos::ZERO`] when empty).
    pub fn horizon(&self) -> Nanos {
        self.events
            .iter()
            .map(FaultEvent::end)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Combined rate multiplier at `t` (overlapping spikes multiply).
    pub fn rate_factor(&self, t: Nanos) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(t))
            .filter_map(|e| match e.kind {
                FaultKind::RateSpike { factor } => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Whether any stall window covers `t`.
    pub fn stalled(&self, t: Nanos) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::QueueStall) && e.active_at(t))
    }

    /// When a packet arriving at `t` inside a stall gets released: the
    /// latest end among stall windows active at `t` (`t` itself when not
    /// stalled).
    pub fn stall_release(&self, t: Nanos) -> Nanos {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::QueueStall) && e.active_at(t))
            .map(FaultEvent::end)
            .max()
            .unwrap_or(t)
    }

    /// Worst-case starvation fraction at `t`, clamped to `[0, 1]`.
    pub fn starve_fraction(&self, t: Nanos) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(t))
            .filter_map(|e| match e.kind {
                FaultKind::PoolStarve { fraction } => Some(fraction.clamp(0.0, 1.0)),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Worst-case jitter burst at `t`: (max shift, max drop probability)
    /// over active jitter windows; `None` when none is active.
    pub fn jitter_at(&self, t: Nanos) -> Option<(Nanos, f64)> {
        let mut worst: Option<(Nanos, f64)> = None;
        for e in &self.events {
            if let FaultKind::JitterBurst { jitter, drop_prob } = e.kind {
                if e.active_at(t) {
                    let (j, p) = worst.unwrap_or((Nanos::ZERO, 0.0));
                    worst = Some((j.max(jitter), p.max(drop_prob)));
                }
            }
        }
        worst
    }

    /// A deterministic random plan for soak/chaos runs: `events` windows
    /// spread over the middle of `[0, horizon)`, cycling through the four
    /// kinds (so any plan with ≥ 4 events exercises every kind and ≥ 3
    /// events exercises three distinct kinds). Windows are sized
    /// `horizon/40 ..= horizon/10` and always end before `horizon` so
    /// recovery after the last fault is observable.
    pub fn seeded(seed: u64, horizon: Nanos, events: usize) -> FaultPlan {
        let mut rng = Rng::new(seed ^ 0xFA17_1A9E);
        let h = horizon.as_nanos().max(40);
        let mut plan = FaultPlan::new();
        for i in 0..events {
            let dur = rng.range_inclusive(h / 40, h / 10).max(1);
            let at = rng.range_inclusive(h / 20, (h - dur).saturating_sub(h / 20).max(h / 20));
            let kind = match i % 4 {
                0 => FaultKind::RateSpike {
                    factor: 1.5 + rng.f64() * 2.5,
                },
                1 => FaultKind::QueueStall,
                2 => FaultKind::PoolStarve {
                    fraction: 0.3 + rng.f64() * 0.5,
                },
                _ => FaultKind::JitterBurst {
                    jitter: Nanos(rng.range_inclusive(1_000, 50_000)),
                    drop_prob: 0.05 + rng.f64() * 0.25,
                },
            };
            plan.push(Nanos(at), Nanos(dur), kind);
        }
        plan
    }
}

/// Shared, thread-safe record of what an injector actually did — the
/// bridge between boxed arrival processes (unreadable after the run) and
/// the runner's telemetry. All counters are relaxed atomics; safe to read
/// live from a sampler thread.
#[derive(Clone, Debug, Default)]
pub struct InjectionStats {
    inner: Arc<InjectionCounters>,
}

#[derive(Debug, Default)]
struct InjectionCounters {
    drops: AtomicU64,
    duplicated: AtomicU64,
    held: AtomicU64,
}

impl InjectionStats {
    /// Fresh all-zero stats.
    pub fn new() -> Self {
        InjectionStats::default()
    }

    /// Packets the injector suppressed (starvation, jitter loss, or a
    /// rate dip thinning the stream). These are the `DropCause::Fault`
    /// drops a run must account for.
    pub fn drops(&self) -> u64 {
        self.inner.drops.load(Ordering::Relaxed)
    }

    /// Extra packets a rate spike added beyond the underlying stream.
    pub fn duplicated(&self) -> u64 {
        self.inner.duplicated.load(Ordering::Relaxed)
    }

    /// Packets currently held by an active stall window (gauge). Packets
    /// still held when a run ends are stranded upstream; the runner folds
    /// them into the fault-drop count so conservation stays exact.
    pub fn held(&self) -> u64 {
        self.inner.held.load(Ordering::Relaxed)
    }

    /// Record `n` suppressed packets.
    pub fn add_drops(&self, n: u64) {
        if n > 0 {
            self.inner.drops.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` spike-duplicated packets.
    pub fn add_duplicated(&self, n: u64) {
        if n > 0 {
            self.inner.duplicated.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn hold(&self, n: u64) {
        self.inner.held.fetch_add(n, Ordering::Relaxed);
    }

    fn release(&self, n: u64) {
        self.inner.held.fetch_sub(n, Ordering::Relaxed);
    }
}

/// An [`ArrivalProcess`] under a [`FaultPlan`]: the simulator-side
/// realization of every fault kind.
///
/// * `RateSpike` duplicates arrivals by the active factor (fractional
///   parts resolved per-packet by coin flip), a dip (`factor < 1`) thins
///   the stream and counts the thinned packets as fault drops;
/// * `PoolStarve` refuses admission with the active fraction;
/// * `JitterBurst` drops with the active probability and shifts the
///   survivors backward by up to the active jitter;
/// * `QueueStall` holds arrivals and releases them in a burst when the
///   stall window ends (upstream buffering).
///
/// Accounting invariant (checked by tests): at any drain boundary,
/// `inner_offered + duplicated == emitted + drops + held`.
pub struct PlannedFaults<A> {
    inner: A,
    plan: FaultPlan,
    rng: Rng,
    stats: InjectionStats,
    /// Release instants of stalled packets, non-decreasing.
    held: VecDeque<Nanos>,
    buf: Vec<Nanos>,
}

impl<A: ArrivalProcess> PlannedFaults<A> {
    /// Wrap `inner` under `plan`, drawing per-packet randomness from
    /// `rng`.
    pub fn new(inner: A, plan: FaultPlan, rng: Rng) -> Self {
        PlannedFaults {
            inner,
            plan,
            rng,
            stats: InjectionStats::new(),
            held: VecDeque::new(),
            buf: Vec::new(),
        }
    }

    /// The shared stats handle (clone it out before boxing the process).
    pub fn stats(&self) -> InjectionStats {
        self.stats.clone()
    }

    /// The plan this wrapper realizes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide how many copies of an arrival at `t` to offer (0 = thinned
    /// away by a rate dip).
    fn copies_at(&mut self, t: Nanos) -> u64 {
        let f = self.plan.rate_factor(t);
        if f == 1.0 {
            return 1;
        }
        let whole = f.trunc() as u64;
        let frac = f.fract();
        whole + u64::from(frac > 0.0 && self.rng.chance(frac))
    }
}

impl<A: ArrivalProcess> ArrivalProcess for PlannedFaults<A> {
    fn drain(&mut self, until: Nanos, timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        self.buf.clear();
        self.inner.drain(until, Some(&mut self.buf));
        let mut kept: u64 = 0;
        let mut out = timestamps;
        // Stalled packets whose release window has ended come out first.
        while let Some(&release) = self.held.front() {
            if release > until {
                break;
            }
            self.held.pop_front();
            self.stats.release(1);
            kept += 1;
            if let Some(out) = out.as_deref_mut() {
                out.push(release);
            }
        }
        let raw = std::mem::take(&mut self.buf);
        for &t in &raw {
            let copies = self.copies_at(t);
            if copies == 0 {
                self.stats.add_drops(1);
                continue;
            }
            self.stats.add_duplicated(copies - 1);
            for _ in 0..copies {
                let mut emit_at = t;
                if self.plan.starve_fraction(t) > 0.0
                    && self.rng.chance(self.plan.starve_fraction(t))
                {
                    self.stats.add_drops(1);
                    continue;
                }
                if let Some((jitter, drop_prob)) = self.plan.jitter_at(t) {
                    if drop_prob > 0.0 && self.rng.chance(drop_prob) {
                        self.stats.add_drops(1);
                        continue;
                    }
                    if !jitter.is_zero() {
                        // Backward only: stays ≤ until and cheap to order.
                        emit_at = t.saturating_sub(Nanos(self.rng.below(jitter.as_nanos())));
                    }
                }
                if self.plan.stalled(t) {
                    let release = self.plan.stall_release(t);
                    if release > until {
                        self.held.push_back(release);
                        self.stats.hold(1);
                        continue;
                    }
                    // Stall ends within this drain: emit at the release.
                    emit_at = release;
                }
                kept += 1;
                if let Some(out) = out.as_deref_mut() {
                    out.push(emit_at);
                }
            }
        }
        self.buf = raw;
        kept
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        match (self.held.front().copied(), self.inner.peek_next()) {
            (Some(h), Some(n)) => Some(h.min(n)),
            (Some(h), None) => Some(h),
            (None, next) => next,
        }
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        if self.plan.stalled(t) {
            return 0.0;
        }
        let mut rate = self.inner.rate_pps(t) * self.plan.rate_factor(t);
        rate *= 1.0 - self.plan.starve_fraction(t);
        if let Some((_, drop_prob)) = self.plan.jitter_at(t) {
            rate *= 1.0 - drop_prob;
        }
        rate
    }
}

/// An arrival process with independent per-packet drop probability and
/// uniform ± jitter on each arrival instant.
pub struct FaultyArrivals<A> {
    inner: A,
    drop_prob: f64,
    jitter: Nanos,
    rng: Rng,
    buf: Vec<Nanos>,
    stats: InjectionStats,
    /// Packets suppressed by the injector so far.
    pub injected_drops: u64,
}

impl<A: ArrivalProcess> FaultyArrivals<A> {
    /// Wrap `inner`, dropping each packet with probability `drop_prob` and
    /// shifting each surviving arrival by up to ± `jitter` (clamped so the
    /// stream stays ordered within a drain window).
    pub fn new(inner: A, drop_prob: f64, jitter: Nanos, rng: Rng) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        FaultyArrivals {
            inner,
            drop_prob,
            jitter,
            rng,
            buf: Vec::new(),
            stats: InjectionStats::new(),
            injected_drops: 0,
        }
    }

    /// Shared drop counter, readable while (and after) the process is
    /// boxed inside a runner — the hook that makes injected drops visible
    /// to telemetry as `DropCause::Fault`.
    pub fn stats(&self) -> InjectionStats {
        self.stats.clone()
    }
}

impl<A: ArrivalProcess> ArrivalProcess for FaultyArrivals<A> {
    fn drain(&mut self, until: Nanos, timestamps: Option<&mut Vec<Nanos>>) -> u64 {
        // Jitter must not move arrivals past `until` (they would be lost to
        // this drain); pull the raw timestamps and filter/perturb.
        self.buf.clear();
        let raw = self.inner.drain(until, Some(&mut self.buf));
        let mut kept = 0;
        if let Some(out) = timestamps {
            for &t in &self.buf {
                if self.drop_prob > 0.0 && self.rng.chance(self.drop_prob) {
                    self.injected_drops += 1;
                    self.stats.add_drops(1);
                    continue;
                }
                kept += 1;
                let jit = if self.jitter.is_zero() {
                    Nanos::ZERO
                } else {
                    Nanos(self.rng.below(self.jitter.as_nanos().max(1)))
                };
                // Shift backward only (stay ≤ until and keep order cheaply).
                out.push(t.saturating_sub(jit));
            }
        } else {
            for _ in 0..raw {
                if self.drop_prob > 0.0 && self.rng.chance(self.drop_prob) {
                    self.injected_drops += 1;
                    self.stats.add_drops(1);
                } else {
                    kept += 1;
                }
            }
        }
        kept
    }

    fn peek_next(&mut self) -> Option<Nanos> {
        self.inner.peek_next()
    }

    fn rate_pps(&self, t: Nanos) -> f64 {
        self.inner.rate_pps(t) * (1.0 - self.drop_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::Cbr;

    #[test]
    fn zero_faults_is_transparent() {
        let mut clean = Cbr::new(1e6, Nanos::ZERO);
        let mut faulty =
            FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.0, Nanos::ZERO, Rng::new(1));
        let t = Nanos::from_millis(3);
        assert_eq!(clean.drain(t, None), faulty.drain(t, None));
        assert_eq!(faulty.injected_drops, 0);
    }

    #[test]
    fn drop_probability_thins_the_stream() {
        let mut faulty =
            FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.25, Nanos::ZERO, Rng::new(2));
        let stats = faulty.stats();
        let n = faulty.drain(Nanos::from_millis(100), None);
        // 100k offered, 25% dropped: expect ≈75k.
        assert!((n as f64 - 75_000.0).abs() < 1_500.0, "{n}");
        assert!((faulty.injected_drops as f64 - 25_000.0).abs() < 1_500.0);
        // The shared handle sees the same count (telemetry visibility).
        assert_eq!(stats.drops(), faulty.injected_drops);
    }

    #[test]
    fn effective_rate_reflects_drops() {
        let faulty = FaultyArrivals::new(Cbr::new(2e6, Nanos::ZERO), 0.5, Nanos::ZERO, Rng::new(3));
        assert!((faulty.rate_pps(Nanos::from_secs(1)) - 1e6).abs() < 1.0);
    }

    #[test]
    fn jitter_keeps_timestamps_in_window() {
        let mut faulty = FaultyArrivals::new(
            Cbr::new(1e6, Nanos::ZERO),
            0.0,
            Nanos::from_micros(3),
            Rng::new(4),
        );
        let until = Nanos::from_micros(500);
        let mut ts = Vec::new();
        faulty.drain(until, Some(&mut ts));
        assert!(!ts.is_empty());
        assert!(ts.iter().all(|&t| t <= until));
    }

    #[test]
    fn counts_match_with_and_without_timestamps() {
        // The kept-count must be deterministic per seed regardless of
        // whether the caller asked for timestamps.
        let mut a = FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.3, Nanos::ZERO, Rng::new(5));
        let mut b = FaultyArrivals::new(Cbr::new(1e6, Nanos::ZERO), 0.3, Nanos::ZERO, Rng::new(5));
        let t = Nanos::from_millis(5);
        let mut ts = Vec::new();
        let na = a.drain(t, Some(&mut ts));
        let nb = b.drain(t, None);
        assert_eq!(na, nb);
        assert_eq!(na as usize, ts.len());
    }

    // ---- FaultPlan ---------------------------------------------------

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn plan_queries_respect_windows() {
        let plan = FaultPlan::new()
            .with(ms(10), ms(10), FaultKind::RateSpike { factor: 3.0 })
            .with(ms(15), ms(10), FaultKind::RateSpike { factor: 2.0 })
            .with(ms(40), ms(5), FaultKind::QueueStall)
            .with(ms(60), ms(5), FaultKind::PoolStarve { fraction: 0.5 })
            .with(
                ms(80),
                ms(5),
                FaultKind::JitterBurst {
                    jitter: Nanos::from_micros(10),
                    drop_prob: 0.2,
                },
            );
        assert_eq!(plan.rate_factor(ms(5)), 1.0);
        assert_eq!(plan.rate_factor(ms(12)), 3.0);
        // Overlapping spikes multiply.
        assert_eq!(plan.rate_factor(ms(17)), 6.0);
        assert!(!plan.stalled(ms(39)));
        assert!(plan.stalled(ms(42)));
        assert_eq!(plan.stall_release(ms(42)), ms(45));
        assert!(!plan.stalled(ms(45))); // end-exclusive
        assert_eq!(plan.starve_fraction(ms(62)), 0.5);
        assert_eq!(plan.starve_fraction(ms(70)), 0.0);
        assert_eq!(plan.jitter_at(ms(81)), Some((Nanos::from_micros(10), 0.2)));
        assert_eq!(plan.jitter_at(ms(90)), None);
        assert_eq!(plan.distinct_kinds(), 4);
        assert_eq!(plan.horizon(), ms(85));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_kinds() {
        let a = FaultPlan::seeded(7, Nanos::from_secs(10), 6);
        let b = FaultPlan::seeded(7, Nanos::from_secs(10), 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.distinct_kinds(), 4);
        assert!(a.horizon() <= Nanos::from_secs(10));
        let c = FaultPlan::seeded(8, Nanos::from_secs(10), 6);
        assert_ne!(a, c);
    }

    /// What a clean 1 Mpps CBR offers up to `until` (the exact count,
    /// boundary arrivals included).
    fn cbr_offered(until: Nanos) -> u64 {
        Cbr::new(1e6, Nanos::ZERO).drain(until, None)
    }

    /// Drain a wrapper to `until` and return (emitted, stats).
    fn run_planned(plan: FaultPlan, until: Nanos) -> (u64, Vec<Nanos>, InjectionStats) {
        let mut p = PlannedFaults::new(Cbr::new(1e6, Nanos::ZERO), plan, Rng::new(11));
        let stats = p.stats();
        let mut ts = Vec::new();
        let n = p.drain(until, Some(&mut ts));
        (n, ts, stats)
    }

    #[test]
    fn planned_spike_duplicates() {
        let plan = FaultPlan::new().with(ms(0), ms(20), FaultKind::RateSpike { factor: 2.0 });
        let offered = cbr_offered(ms(10));
        let (n, ts, stats) = run_planned(plan, ms(10));
        assert_eq!(n, 2 * offered);
        assert_eq!(ts.len() as u64, 2 * offered);
        assert_eq!(stats.duplicated(), offered);
        assert_eq!(stats.drops(), 0);
    }

    #[test]
    fn planned_dip_thins_and_counts_drops() {
        let plan = FaultPlan::new().with(ms(0), ms(20), FaultKind::RateSpike { factor: 0.0 });
        let offered = cbr_offered(ms(10));
        let (n, _, stats) = run_planned(plan, ms(10));
        assert_eq!(n, 0);
        assert_eq!(stats.drops(), offered);
    }

    #[test]
    fn planned_starve_drops_fraction() {
        let plan = FaultPlan::new().with(ms(0), ms(200), FaultKind::PoolStarve { fraction: 0.4 });
        let offered = cbr_offered(ms(100));
        let (n, _, stats) = run_planned(plan, ms(100));
        assert!((n as f64 - 0.6 * offered as f64).abs() < 2_000.0, "{n}");
        assert_eq!(n + stats.drops(), offered);
    }

    #[test]
    fn planned_stall_holds_then_releases_in_burst() {
        let plan = FaultPlan::new().with(ms(10), ms(10), FaultKind::QueueStall);
        let mut p = PlannedFaults::new(Cbr::new(1e6, Nanos::ZERO), plan, Rng::new(13));
        let stats = p.stats();
        // Drain to mid-stall: the pre-stall prefix passes, the rest holds.
        let n1 = p.drain(ms(15), None);
        let held_mid = stats.held();
        assert_eq!(n1 + held_mid, cbr_offered(ms(15)));
        assert!(held_mid > 4_000, "{held_mid}");
        // Something is still due no later than the stall release.
        assert!(p.peek_next().is_some_and(|t| t <= ms(20)));
        assert_eq!(p.rate_pps(ms(15)), 0.0);
        // Past the stall: held burst comes out plus the clean tail.
        let mut ts = Vec::new();
        let n2 = p.drain(ms(30), Some(&mut ts));
        assert_eq!(stats.held(), 0);
        assert_eq!(n1 + n2, cbr_offered(ms(30)));
        assert_eq!(stats.drops(), 0);
        // Every stalled packet was released exactly at the window end.
        assert!(ts.iter().filter(|&&t| t == ms(20)).count() as u64 >= held_mid);
    }

    #[test]
    fn planned_jitter_drops_and_shifts() {
        let plan = FaultPlan::new().with(
            ms(0),
            ms(200),
            FaultKind::JitterBurst {
                jitter: Nanos::from_micros(5),
                drop_prob: 0.2,
            },
        );
        let offered = cbr_offered(ms(100));
        let (n, ts, stats) = run_planned(plan, ms(100));
        assert!((n as f64 - 0.8 * offered as f64).abs() < 2_000.0, "{n}");
        assert_eq!(n + stats.drops(), offered);
        assert!(ts.iter().all(|&t| t <= ms(100)));
    }

    #[test]
    fn planned_conservation_under_chaos() {
        // Arbitrary overlapping plan: inner offered + duplicated must
        // equal emitted + drops + held at every drain boundary.
        let plan = FaultPlan::seeded(42, ms(200), 8);
        let mut p = PlannedFaults::new(Cbr::new(1e6, Nanos::ZERO), plan, Rng::new(17));
        let stats = p.stats();
        let mut clean = Cbr::new(1e6, Nanos::ZERO);
        let mut emitted = 0u64;
        let mut offered_inner = 0u64;
        for step in 1..=20u64 {
            emitted += p.drain(ms(step * 10), None);
            offered_inner += clean.drain(ms(step * 10), None);
        }
        assert_eq!(
            offered_inner + stats.duplicated(),
            emitted + stats.drops() + stats.held()
        );
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut clean = Cbr::new(1e6, Nanos::ZERO);
        let mut planned =
            PlannedFaults::new(Cbr::new(1e6, Nanos::ZERO), FaultPlan::new(), Rng::new(1));
        let t = Nanos::from_millis(7);
        assert_eq!(clean.drain(t, None), planned.drain(t, None));
        assert_eq!(planned.stats().drops(), 0);
        assert_eq!(planned.rate_pps(t), clean.rate_pps(t));
    }
}
