//! Synthetic flow populations.
//!
//! MoonGen scripts in the paper generate 64 B UDP packets over either a
//! single flow, uniformly random flows, or the skewed mix of the Table III
//! unbalanced test. This module builds reproducible flow sets and exposes
//! how RSS spreads them over Rx queues.

use metronome_net::toeplitz::Toeplitz;
use metronome_net::FiveTuple;
use metronome_sim::Rng;
use std::net::Ipv4Addr;

/// A reproducible population of flows.
#[derive(Clone, Debug)]
pub struct FlowSet {
    flows: Vec<FiveTuple>,
}

impl FlowSet {
    /// `n` uniformly random UDP flows (deterministic per seed).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let flows = (0..n)
            .map(|_| {
                FiveTuple::udp(
                    Ipv4Addr::from(rng.next_u64() as u32),
                    (rng.below(64_511) + 1_024) as u16,
                    Ipv4Addr::from(rng.next_u64() as u32),
                    (rng.below(64_511) + 1_024) as u16,
                )
            })
            .collect();
        FlowSet { flows }
    }

    /// `n` random UDP flows whose destinations fall inside the
    /// `10.h.0.0/16` subnets (`h < n_subnets`) of the l3fwd sample route
    /// table, so every generated packet is forwardable end-to-end. The
    /// realtime pipeline's load generator uses this: random destinations
    /// would all miss the route table and be dropped by the application.
    pub fn routable(n: usize, n_subnets: usize, seed: u64) -> Self {
        assert!((1..=64).contains(&n_subnets), "subnets match l3fwd hops");
        let mut rng = Rng::new(seed ^ 0x10_57AB);
        let flows = (0..n)
            .map(|i| {
                let h = (i % n_subnets) as u8;
                FiveTuple::udp(
                    Ipv4Addr::new(192, 168, rng.below(256) as u8, rng.below(254) as u8 + 1),
                    (rng.below(64_511) + 1_024) as u16,
                    Ipv4Addr::new(10, h, rng.below(256) as u8, rng.below(254) as u8 + 1),
                    (rng.below(64_511) + 1_024) as u16,
                )
            })
            .collect();
        FlowSet { flows }
    }

    /// A single fixed flow repeated (the "same UDP flow" of Table III).
    pub fn single() -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            7_777,
            Ipv4Addr::new(10, 0, 0, 2),
            9_999,
        )
    }

    /// The flows in this set.
    pub fn flows(&self) -> &[FiveTuple] {
        &self.flows
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Fraction of flows RSS maps to each of `n_queues` queues.
    pub fn rss_split(&self, n_queues: usize) -> Vec<f64> {
        let tz = Toeplitz::default();
        let mut counts = vec![0usize; n_queues];
        for f in &self.flows {
            counts[tz.queue_for(&f.rss_input(), n_queues)] += 1;
        }
        counts
            .iter()
            .map(|&c| c as f64 / self.flows.len().max(1) as f64)
            .collect()
    }
}

/// The Table III unbalanced workload: a looped 1000-packet trace where 30%
/// of packets belong to one UDP flow and 70% are spread over random flows.
///
/// Returns, for `n_queues` RSS queues, the fraction of total traffic each
/// queue receives. With 3 queues the hot flow's queue carries
/// `0.30 + 0.70/3 ≈ 53%` and the others ≈ 23% each — the paper's numbers.
#[derive(Clone, Debug)]
pub struct UnbalancedTrace {
    /// Packet sequence as flow references (looped by the generator).
    packets: Vec<FiveTuple>,
    hot: FiveTuple,
}

impl UnbalancedTrace {
    /// Build the canonical 1000-packet trace (300 hot + 700 random).
    pub fn table3(seed: u64) -> Self {
        Self::with_mix(1000, 0.30, seed)
    }

    /// Build a trace of `n` packets with `hot_fraction` of them on one flow.
    pub fn with_mix(n: usize, hot_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&hot_fraction));
        let hot = FlowSet::single();
        let n_hot = (n as f64 * hot_fraction).round() as usize;
        let cold = FlowSet::random(n - n_hot, seed);
        let mut packets = Vec::with_capacity(n);
        packets.extend(std::iter::repeat_n(hot, n_hot));
        packets.extend_from_slice(cold.flows());
        // Interleave deterministically so the hot flow isn't a burst.
        let mut rng = Rng::new(seed ^ 0x7ACE);
        rng.shuffle(&mut packets);
        UnbalancedTrace { packets, hot }
    }

    /// The trace's packet sequence (one loop).
    pub fn packets(&self) -> &[FiveTuple] {
        &self.packets
    }

    /// The hot flow.
    pub fn hot_flow(&self) -> FiveTuple {
        self.hot
    }

    /// Fraction of total traffic each of `n_queues` queues receives,
    /// computed with the real Toeplitz dispatch over the trace.
    pub fn queue_shares(&self, n_queues: usize) -> Vec<f64> {
        let tz = Toeplitz::default();
        let mut counts = vec![0usize; n_queues];
        for p in &self.packets {
            counts[tz.queue_for(&p.rss_input(), n_queues)] += 1;
        }
        counts
            .iter()
            .map(|&c| c as f64 / self.packets.len() as f64)
            .collect()
    }

    /// Index of the queue carrying the hot flow.
    pub fn hot_queue(&self, n_queues: usize) -> usize {
        Toeplitz::default().queue_for(&self.hot.rss_input(), n_queues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_flows_are_reproducible() {
        let a = FlowSet::random(100, 1);
        let b = FlowSet::random(100, 1);
        assert_eq!(a.flows(), b.flows());
        let c = FlowSet::random(100, 2);
        assert_ne!(a.flows(), c.flows());
    }

    #[test]
    fn routable_flows_hit_sample_subnets() {
        let set = FlowSet::routable(64, 4, 9);
        assert_eq!(set.len(), 64);
        for f in set.flows() {
            let o = f.dst_ip.octets();
            assert_eq!(o[0], 10);
            assert!(o[1] < 4, "dst {} outside sample subnets", f.dst_ip);
        }
        // Deterministic per seed, distinct across seeds.
        assert_eq!(FlowSet::routable(64, 4, 9).flows(), set.flows());
        assert_ne!(FlowSet::routable(64, 4, 10).flows(), set.flows());
        // Enough entropy that RSS actually spreads them.
        let spread = set.rss_split(2);
        assert!(spread.iter().all(|&s| s > 0.2), "{spread:?}");
    }

    #[test]
    fn rss_split_roughly_uniform_for_random_flows() {
        let set = FlowSet::random(4_000, 3);
        for (q, share) in set.rss_split(4).iter().enumerate() {
            assert!((0.20..=0.30).contains(share), "queue {q} got share {share}");
        }
    }

    #[test]
    fn table3_shares_match_paper() {
        // Paper §V-F.4: 3 queues, hot queue ≈53%, others ≈23% each.
        let trace = UnbalancedTrace::table3(42);
        let shares = trace.queue_shares(3);
        let hot_q = trace.hot_queue(3);
        assert!(
            (0.48..=0.58).contains(&shares[hot_q]),
            "hot queue share {}",
            shares[hot_q]
        );
        for (q, &s) in shares.iter().enumerate() {
            if q != hot_q {
                assert!((0.18..=0.28).contains(&s), "cold queue {q} share {s}");
            }
        }
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_has_requested_mix() {
        let trace = UnbalancedTrace::with_mix(1000, 0.30, 7);
        let hot = trace.hot_flow();
        let n_hot = trace.packets().iter().filter(|&&p| p == hot).count();
        assert_eq!(n_hot, 300);
        assert_eq!(trace.packets().len(), 1000);
    }

    #[test]
    fn hot_flow_is_queue_stable() {
        let trace = UnbalancedTrace::table3(9);
        let q = trace.hot_queue(3);
        // Every hot packet must land on the same queue.
        let tz = Toeplitz::default();
        for p in trace.packets().iter().filter(|&&p| p == trace.hot_flow()) {
            assert_eq!(tz.queue_for(&p.rss_input(), 3), q);
        }
    }
}
