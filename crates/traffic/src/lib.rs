//! # metronome-traffic — MoonGen-like workload generation
//!
//! The paper drives its testbed with MoonGen \[38\]: CBR 64-byte UDP streams,
//! a rate staircase for the adaptation test (Fig. 9), and a skewed pcap for
//! the unbalanced multiqueue test (Table III). This crate synthesizes the
//! same processes:
//!
//! * [`arrival`] — lazily-drained arrival processes ([`arrival::Cbr`],
//!   [`arrival::Poisson`], [`arrival::Staircase`], [`arrival::OnOff`],
//!   [`arrival::Silent`]) used by the simulator's hybrid analytic/DES queue
//!   filling;
//! * [`flows`] — reproducible flow populations, the Table III
//!   30%-hot-flow trace, and RSS share computation over real Toeplitz
//!   dispatch;
//! * [`pacing`] — the wall-clock adapter that replays any arrival process
//!   in real time for the real-thread pipeline ([`pacing::PacedArrivals`]);
//! * convenience conversions between Gb/s and packets/s re-exported from
//!   the NIC framing math ([`gbps_to_pps`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod faults;
pub mod flows;
pub mod pacing;

pub use arrival::{ArrivalProcess, BurstyCbr, Cbr, OnOff, Poisson, Silent, Staircase};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultyArrivals, InjectionStats, PlannedFaults};
pub use flows::{FlowSet, UnbalancedTrace};
pub use metronome_dpdk::nic::{gbps_to_pps, line_rate_pps, pps_to_gbps, LINE_RATE_10G_64B_PPS};
pub use pacing::{PacedArrivals, WallClock};
