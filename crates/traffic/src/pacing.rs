//! Wall-clock pacing of arrival processes for the real-thread pipeline.
//!
//! The simulator *drains* an [`ArrivalProcess`] lazily against virtual
//! time; the realtime load generator must instead *emit* the same arrival
//! schedule against the machine's clock, the way MoonGen's rate control
//! releases paced DMA batches. [`PacedArrivals`] is that adapter: it maps
//! `Instant::now()` onto the process's virtual timeline via a
//! [`WallClock`], sleeps until the next arrival is due through the same
//! [`PreciseSleeper`] the Metronome workers use (the user-space stand-in
//! for `hr_sleep()` — one hybrid-sleep implementation, not two), and
//! hands the caller batches of due arrival timestamps.
//!
//! The schedule is authoritative: a generator that falls behind (slow
//! frame building, scheduler preemption) catches up by emitting the
//! backlog in one batch, so the *offered count over any window* matches
//! the arrival process exactly — only micro-timing degrades, never the
//! rate. This mirrors how hardware generators behave under back-pressure
//! and is what keeps offered-count assertions deterministic in tests.

use crate::arrival::ArrivalProcess;
use metronome_core::realtime::PreciseSleeper;
use metronome_sim::Nanos;
use std::time::{Duration, Instant};

/// Maps wall-clock instants onto a virtual [`Nanos`] timeline anchored at
/// construction time.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Anchor the timeline at the current instant.
    pub fn start() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    /// Virtual time elapsed since the anchor.
    pub fn now(&self) -> Nanos {
        Nanos(self.start.elapsed().as_nanos() as u64)
    }

    /// The wall-clock instant virtual time zero maps to. Lets derived
    /// clocks (e.g. a `CoarseClock` amortizing hot-path reads) share this
    /// timeline exactly.
    pub fn anchor(&self) -> Instant {
        self.start
    }

    /// Sleep until virtual time `t` through `sleeper` (the same hybrid
    /// OS-sleep + spin-tail primitive the Metronome workers use — see
    /// DESIGN.md's `hr_sleep` substitution). Returns immediately if `t`
    /// has already passed.
    pub fn sleep_until(&self, t: Nanos, sleeper: &PreciseSleeper) {
        let deadline = self.start + Duration::from_nanos(t.as_nanos());
        if let Some(remaining) = deadline.checked_duration_since(Instant::now()) {
            sleeper.sleep(remaining);
        }
    }
}

/// Drives an [`ArrivalProcess`] in real time, yielding batches of due
/// arrivals.
pub struct PacedArrivals {
    clock: WallClock,
    source: Box<dyn ArrivalProcess>,
    horizon: Nanos,
    sleeper: PreciseSleeper,
    buf: Vec<Nanos>,
    /// Read position into `buf` (chunked hand-out of a catch-up backlog).
    cursor: usize,
    /// Largest batch `next_batch` hands out (0 = unlimited).
    max_batch: usize,
}

impl PacedArrivals {
    /// Pace `source` from now until `horizon` of virtual time. The clock
    /// starts immediately.
    pub fn new(source: Box<dyn ArrivalProcess>, horizon: Nanos) -> Self {
        Self::with_clock(source, horizon, WallClock::start())
    }

    /// Pace `source` against an existing `clock` instead of anchoring a
    /// fresh one. This is how sharded generation keeps `G` concurrent
    /// pacers on one timeline: every shard shares the run's clock
    /// (`WallClock` is `Copy`), so their interleaved arrival timestamps
    /// are mutually comparable and the latency/jitter measurements all
    /// reference the same zero.
    pub fn with_clock(source: Box<dyn ArrivalProcess>, horizon: Nanos, clock: WallClock) -> Self {
        PacedArrivals {
            clock,
            source,
            horizon,
            sleeper: PreciseSleeper::default(),
            buf: Vec::new(),
            cursor: 0,
            max_batch: 0,
        }
    }

    /// Bound the size of the batches [`PacedArrivals::next_batch`] hands
    /// out. A generator that fell behind catches up by emitting its whole
    /// backlog; with a cap the backlog arrives as consecutive chunks of at
    /// most `n` arrivals instead of one unbounded slice — which is what a
    /// consumer allocating mbufs burst-by-burst from a *finite* pool
    /// needs: the chunk size bounds how many pool buffers one batch can
    /// demand before any can be recycled. `0` removes the cap.
    pub fn with_max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// The clock this pacer runs against (share it with consumers so
    /// arrival timestamps and latency measurements use one timeline).
    pub fn clock(&self) -> WallClock {
        self.clock
    }

    /// Block until at least one arrival is due, then return the batch of
    /// arrival timestamps with `t ≤ now` (all before the horizon), at
    /// most `max_batch` long if a cap is set. `None` once the horizon has
    /// passed or the source is exhausted.
    pub fn next_batch(&mut self) -> Option<&[Nanos]> {
        loop {
            // Hand out the rest of an already-drained backlog first.
            if self.cursor < self.buf.len() {
                let end = match self.max_batch {
                    0 => self.buf.len(),
                    cap => (self.cursor + cap).min(self.buf.len()),
                };
                let chunk = &self.buf[self.cursor..end];
                self.cursor = end;
                return Some(chunk);
            }
            let now = self.clock.now();
            let cut = now.min(self.horizon.saturating_sub(Nanos(1)));
            self.buf.clear();
            self.cursor = 0;
            let n = self.source.drain(cut, Some(&mut self.buf));
            if n > 0 {
                continue; // serve from the freshly drained buffer
            }
            if now >= self.horizon {
                return None;
            }
            match self.source.peek_next() {
                Some(t) if t < self.horizon => self.clock.sleep_until(t, &self.sleeper),
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{Cbr, OnOff, Silent};

    #[test]
    fn wall_clock_is_monotone_and_sleeps_to_deadline() {
        let clock = WallClock::start();
        let sleeper = PreciseSleeper::default();
        let a = clock.now();
        clock.sleep_until(a + Nanos::from_micros(300), &sleeper);
        let b = clock.now();
        assert!(b >= a + Nanos::from_micros(300), "woke early: {a} -> {b}");
        // Sleeping until a past deadline returns immediately.
        clock.sleep_until(Nanos::ZERO, &sleeper);
    }

    #[test]
    fn paced_cbr_emits_the_exact_schedule() {
        // 100 kpps for 20 ms of virtual time = 2000 arrivals; the count is
        // schedule-exact no matter how the wall clock slices the run.
        let horizon = Nanos::from_millis(20);
        let mut paced = PacedArrivals::new(Box::new(Cbr::new(100_000.0, Nanos::ZERO)), horizon);
        let mut total = 0u64;
        let mut last = Nanos::ZERO;
        while let Some(batch) = paced.next_batch() {
            for &t in batch {
                assert!(t >= last, "timestamps must be ordered");
                assert!(t < horizon, "arrival past the horizon");
                last = t;
            }
            total += batch.len() as u64;
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn capped_batches_preserve_schedule_and_order() {
        // Same CBR run as above, but handed out in chunks of ≤ 32: the
        // total and the ordering must be unchanged, every chunk bounded.
        let horizon = Nanos::from_millis(20);
        let mut paced = PacedArrivals::new(Box::new(Cbr::new(100_000.0, Nanos::ZERO)), horizon)
            .with_max_batch(32);
        let mut total = 0u64;
        let mut last = Nanos::ZERO;
        while let Some(batch) = paced.next_batch() {
            assert!(!batch.is_empty());
            assert!(batch.len() <= 32, "cap violated: {}", batch.len());
            for &t in batch {
                assert!(t >= last, "timestamps must stay ordered across chunks");
                last = t;
            }
            total += batch.len() as u64;
        }
        assert_eq!(total, 2000);
    }

    #[test]
    fn paced_run_tracks_wall_time() {
        let t0 = Instant::now();
        let mut paced = PacedArrivals::new(
            Box::new(Cbr::new(50_000.0, Nanos::ZERO)),
            Nanos::from_millis(10),
        );
        while paced.next_batch().is_some() {}
        let wall = t0.elapsed();
        assert!(wall >= Duration::from_millis(9), "finished early: {wall:?}");
        // Generous bound: shared/1-core CI machines stall, but a paced
        // 10 ms run must not take seconds.
        assert!(wall < Duration::from_secs(2), "pacing stalled: {wall:?}");
    }

    #[test]
    fn sharded_pacers_share_one_timeline() {
        // Two pacers on one clock (the sharded-generation shape): each
        // emits its own slice's exact schedule against the shared zero.
        let clock = WallClock::start();
        let horizon = Nanos::from_millis(10);
        let mk = |offset_ns: u64| {
            PacedArrivals::with_clock(
                Box::new(Cbr::new(100_000.0, Nanos(offset_ns))),
                horizon,
                clock,
            )
        };
        let (mut a, mut b) = (mk(0), mk(5_000));
        let (mut na, mut nb) = (0u64, 0u64);
        while let Some(batch) = a.next_batch() {
            na += batch.len() as u64;
        }
        while let Some(batch) = b.next_batch() {
            nb += batch.len() as u64;
        }
        assert_eq!(na, 1000);
        assert_eq!(nb, 1000);
    }

    #[test]
    fn silent_source_ends_immediately() {
        let mut paced = PacedArrivals::new(Box::new(Silent), Nanos::from_secs(1000));
        assert!(paced.next_batch().is_none());
    }

    #[test]
    fn onoff_source_is_bounded_by_horizon() {
        // An OnOff source always has a next arrival; the horizon must
        // still terminate the pacer during an off-period.
        let mut paced = PacedArrivals::new(
            Box::new(OnOff::new(
                1e6,
                Nanos::from_millis(2),
                Nanos::from_secs(3600),
            )),
            Nanos::from_millis(5),
        );
        let mut total = 0u64;
        while let Some(batch) = paced.next_batch() {
            total += batch.len() as u64;
        }
        assert!((total as i64 - 2000).unsigned_abs() <= 2, "{total}");
    }
}
