//! The Fig. 9 adaptation story as a runnable demo.
//!
//! Drives the deterministic whole-system simulation with the MoonGen-style
//! rate staircase (up to 14 Mpps and back down) and prints how Metronome's
//! load estimate, adaptive `TS` and CPU usage track the offered rate.
//!
//! ```text
//! cargo run --release --example adaptive_ramp
//! ```

use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;

fn main() {
    let step = Nanos::from_millis(400);
    let n_steps = 15;
    let sc = Scenario::metronome(
        "adaptive-ramp",
        MetronomeConfig::default(),
        TrafficSpec::RampUpDown {
            peak_pps: 14e6,
            n_steps,
            step,
        },
    )
    .with_duration(step.scaled(2 * n_steps as u64))
    .with_series(step / 2);

    println!(
        "Simulating a {:.1}s rate staircase (0 → 14 Mpps → 0)...\n",
        sc.duration.as_secs_f64()
    );
    let r = run(&sc);

    println!("   t[s]   true[Mpps]  est[Mpps]   TS[µs]     rho   CPU[%]");
    println!("  ------  ----------  ---------  -------  ------  ------");
    for p in &r.series {
        let bar = "#".repeat((p.cpu_pct / 2.5) as usize);
        println!(
            "  {:6.2}  {:10.2}  {:9.2}  {:7.2}  {:6.3}  {:6.1} {bar}",
            p.t_s, p.true_mpps, p.est_mpps, p.ts_us, p.rho, p.cpu_pct
        );
    }
    println!(
        "\nforwarded {:.2} Mpps on average, loss {:.4}‰, mean vacation {:.1} µs",
        r.throughput_mpps,
        r.loss_permille(),
        r.mean_vacation_us()
    );
    println!(
        "The estimate ρ̂·µ follows the staircase and TS breathes inversely \
         ({:.1} µs at the valleys, {:.1} µs at the peak): CPU stays \
         proportional to load while the vacation target holds.",
        r.series.iter().map(|p| p.ts_us).fold(f64::MIN, f64::max),
        r.series.iter().map(|p| p.ts_us).fold(f64::MAX, f64::min),
    );
}
