//! CPU sharing with a co-located tenant (paper §V-E, Fig. 12 / Table II).
//!
//! Runs ferret (a CPU-hungry PARSEC-style job) alone, next to a static
//! DPDK poller on the same core, and next to Metronome across three cores,
//! and reports both sides of the bargain: the tenant's slowdown and the
//! packet path's throughput.
//!
//! ```text
//! cargo run --release --example cpu_sharing
//! ```

use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run, FerretSpec, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;

fn main() {
    let standalone = Nanos::from_millis(500);
    let horizon = Nanos::from_millis(2_500);
    let line = TrafficSpec::CbrGbps(10.0);

    println!(
        "ferret standalone budget: {:.1} s of single-core work\n",
        standalone.as_secs_f64()
    );

    let alone = run(&Scenario::idle("ferret-alone")
        .with_duration(horizon)
        .with_ferret(FerretSpec {
            n_workers: 1,
            standalone,
            nice: 0,
            on_net_cores: false,
        }));

    let with_static = run(&Scenario::static_dpdk("static+ferret", 1, line.clone())
        .with_duration(horizon)
        .with_ferret(FerretSpec {
            n_workers: 1,
            standalone,
            nice: 0,
            on_net_cores: true,
        }));

    let with_metronome =
        run(
            &Scenario::metronome("metronome+ferret", MetronomeConfig::default(), line)
                .with_duration(horizon)
                .with_ferret(FerretSpec {
                    n_workers: 3,
                    standalone,
                    nice: 19,
                    on_net_cores: true,
                }),
        );

    let fmt = |r: &metronome_repro::runtime::RunReport| {
        format!(
            "tput {:>5.2} Mpps | loss {:>7.3}‰ | ferret {}",
            r.throughput_mpps,
            r.loss_permille(),
            match r.ferret_slowdown() {
                Some(s) => format!("{s:.2}x slowdown"),
                None => "did not finish".into(),
            }
        )
    };
    println!("ferret alone (1 core):          {}", fmt(&alone));
    println!("ferret + static DPDK (1 core):  {}", fmt(&with_static));
    println!("ferret + Metronome  (3 cores):  {}", fmt(&with_metronome));
    println!(
        "\nThe paper's Table II in action: the busy-poller halves its own \
         throughput and triples the tenant's runtime, while Metronome keeps \
         line rate and costs the tenant a few percent — vacations are real, \
         usable CPU time."
    );
}
