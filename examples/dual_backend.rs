//! One `Scenario`, both backends: simulate it, then run it for real.
//!
//! The same l3fwd CBR scenario executes first in the deterministic
//! discrete-event simulator (`run`) and then end-to-end on real threads
//! (`run_realtime`): wall-clock paced load generation, Toeplitz RSS over
//! bounded mbuf rings, real Metronome workers forwarding real frames
//! through the functional l3fwd, per-packet latency histograms. Both
//! produce the same `RunReport`, printed side by side.
//!
//! ```text
//! cargo run --release --example dual_backend [kpps] [milliseconds]
//! ```

use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run, run_realtime, RunReport, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;

fn scenario(kpps: f64, millis: u64) -> Scenario {
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        ..MetronomeConfig::default()
    };
    Scenario::metronome("dual-backend", cfg, TrafficSpec::CbrPps(kpps * 1e3))
        .with_duration(Nanos::from_millis(millis))
        .with_latency()
        .with_seed(0xD0A1)
}

fn row(label: &str, r: &RunReport) {
    let lat = r.latency_us.as_ref().map_or("-".into(), |b| {
        format!("{:.1}/{:.1}/{:.1}", b.q1, b.median, b.q3)
    });
    println!(
        "{label:<10} {:>9} {:>9} {:>7} {:>9.3} {:>8.2} {:>16}",
        r.offered,
        r.forwarded,
        r.dropped,
        r.loss_permille(),
        r.mean_rho(),
        lat
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let kpps: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50.0);
    let millis: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);

    println!("l3fwd CBR {kpps} kpps for {millis} ms on both backends\n");
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>9} {:>8} {:>16}",
        "backend", "offered", "processed", "dropped", "loss\u{2030}", "rho", "lat q1/med/q3 µs"
    );

    let sim = run(&scenario(kpps, millis));
    row("sim", &sim);

    let rt = run_realtime(&scenario(kpps, millis));
    row("realtime", &rt);

    assert_eq!(rt.offered, rt.forwarded + rt.dropped, "conservation");
    println!("\nrealtime conservation holds: offered = processed + dropped");
}
