//! Multiqueue Metronome on a 40 GbE XL710 (paper §IV-E / §V-F).
//!
//! Four RSS queues at the NIC's 37 Mpps cap, M = 5 threads racing over
//! them with per-queue adaptive timeouts — including the unbalanced-trace
//! variant where one hot flow concentrates ~53% of the traffic on a single
//! queue (Table III).
//!
//! ```text
//! cargo run --release --example multiqueue_40g [balanced|unbalanced]
//! ```

use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::NicProfile;
use metronome_repro::runtime::{run, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "balanced".into());
    let unbalanced = mode == "unbalanced";
    let n_queues = if unbalanced { 3 } else { 4 };
    let m_threads = if unbalanced { 4 } else { 5 };
    let traffic = if unbalanced {
        TrafficSpec::Unbalanced { total_pps: 37e6 }
    } else {
        TrafficSpec::CbrPps(37e6)
    };

    println!(
        "XL710 @ 37 Mpps, {n_queues} RSS queues, M = {m_threads} Metronome threads ({mode}):\n"
    );
    let sc = Scenario::metronome(
        format!("multiqueue-{mode}"),
        MetronomeConfig::multiqueue(m_threads, n_queues),
        traffic,
    )
    .with_nic(NicProfile::XL710)
    .with_duration(Nanos::from_secs(2));
    let r = run(&sc);

    println!(
        "throughput {:.2} Mpps, loss {:.3}‰, total CPU {:.0}%, power {:.1} W\n",
        r.throughput_mpps,
        r.loss_permille(),
        r.cpu_total_pct,
        r.power_watts
    );
    println!("  queue  share[%]   rho    busy tries[%]  lock tries");
    println!("  -----  --------  ------  -------------  ----------");
    for (i, q) in r.queues.iter().enumerate() {
        println!(
            "  #{:<4}  {:8.1}  {:6.3}  {:13.2}  {:10}",
            i + 1,
            q.drained as f64 / r.forwarded.max(1) as f64 * 100.0,
            q.rho,
            q.busy_try_fraction * 100.0,
            q.total_tries + q.busy_tries
        );
    }
    if unbalanced {
        println!(
            "\nTable III's signature: the hot queue has the highest ρ and busy-try \
             share but *fewer* lock tries — a busy queue keeps a single primary \
             while idle queues are visited by many (paper §IV-A)."
        );
    } else {
        println!(
            "\nBackups pick their next queue at random (rte_random), so queue \
             checks stay fair and every queue holds one primary on average."
        );
    }
}
