//! Quickstart: Metronome on real threads.
//!
//! Runs the paper's Listing 2 loop on actual `std::thread` workers over
//! in-process lock-free queues: M = 3 threads share one Rx queue through a
//! CMPXCHG trylock, the winner drains, everyone sleeps adaptive timeouts
//! through the spin-assisted precise sleeper. A producer thread plays the
//! NIC, pushing packets at a configurable rate.
//!
//! ```text
//! cargo run --release --example quickstart [pps] [seconds]
//! ```

use crossbeam::queue::ArrayQueue;
use metronome_repro::core::{config::MetronomeConfig, realtime::Metronome};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let pps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let seconds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("Metronome quickstart: {pps} pps for {seconds} s, M = 3 threads, 1 queue");

    let queues = vec![Arc::new(ArrayQueue::<u64>::new(4096))];
    let cfg = MetronomeConfig::default(); // M = 3, V̄ = 10 µs, TL = 500 µs

    let m = Metronome::start(cfg, queues.clone(), |_queue, burst: &mut Vec<u64>| {
        // A real application would forward/inspect the burst here (the
        // worker hands over each drained burst in one call, DPDK-style).
        for packet in burst.drain(..) {
            std::hint::black_box(packet);
        }
    });

    // Give the workers a moment to spawn before offering load, like a NIC
    // coming up after the app's EAL init.
    std::thread::sleep(Duration::from_millis(100));

    // Producer: paced pushes at the requested rate, in bursts of 32 like a
    // NIC DMA engine.
    let stop = Arc::new(AtomicBool::new(false));
    let producer = {
        let q = Arc::clone(&queues[0]);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let burst = 32u64;
            let gap = Duration::from_nanos(1_000_000_000 * burst / pps.max(1));
            let mut seq = 0u64;
            let mut dropped = 0u64;
            let mut next = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..burst {
                    if q.push(seq).is_err() {
                        dropped += 1;
                    }
                    seq += 1;
                }
                next += gap;
                while Instant::now() < next {
                    std::hint::spin_loop();
                }
            }
            (seq, dropped)
        })
    };

    for s in 1..=seconds {
        std::thread::sleep(Duration::from_secs(1));
        println!(
            "  t={s:2}s  processed={:9}  rho={:.3}  TS={}",
            m.processed(0),
            m.rho(0),
            m.ts(0),
        );
    }

    stop.store(true, Ordering::Relaxed);
    let (offered, q_dropped) = producer.join().expect("producer");
    std::thread::sleep(Duration::from_millis(50)); // drain the tail
    let stats = m.stop();

    println!("\n--- results -------------------------------------------");
    println!("offered:        {offered}");
    println!("queue drops:    {q_dropped}");
    println!("processed:      {}", stats.total_processed());
    println!("busy tries:     {}", stats.total_busy_tries());
    println!("final rho:      {:.4}", stats.rho[0]);
    println!("final TS:       {}", stats.ts[0]);
    for (i, (w, won)) in stats.wakes.iter().zip(&stats.races_won).enumerate() {
        println!("thread {i}: wakes={w} races_won={won}");
    }
    let loss = q_dropped as f64 / offered.max(1) as f64;
    println!(
        "loss: {:.4}% — the sleep&wake loop kept up with the load using \
         sleeps instead of busy polling",
        loss * 100.0
    );
}
