//! Live windowed telemetry over a real-thread Metronome instance.
//!
//! Starts workers with a `TelemetryHub` attached, offers a two-phase load
//! (quiet, then a burst plateau), and samples the hub every 100 ms while
//! the run is live — printing each window as it closes: duty cycle,
//! windowed throughput, wake rate, and the adaptive `TS` trajectory
//! reacting to the load step. Afterwards the same series is rendered
//! through the three exporters (CSV, JSON, Prometheus text format).
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use metronome_repro::core::{config::MetronomeConfig, realtime::Metronome};
use metronome_repro::sim::Nanos;
use metronome_repro::telemetry::{
    CounterSnapshot, CsvExporter, Exporter, JsonExporter, PrometheusExporter, Sampler, TelemetryHub,
};

use crossbeam::queue::ArrayQueue;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WINDOW: Duration = Duration::from_millis(100);
const WINDOWS: usize = 10;

fn main() {
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        ..MetronomeConfig::default()
    };
    let hub = TelemetryHub::new(cfg.m_threads, cfg.n_queues);
    let queues = vec![Arc::new(ArrayQueue::<u64>::new(4096))];
    let metronome = Metronome::start_with_telemetry(
        cfg,
        queues.clone(),
        |_q, burst: &mut Vec<u64>| {
            burst.drain(..);
        },
        &hub,
    );

    println!("live series: one row per {WINDOW:?} window (load steps up at window 5)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "window", "retrieved", "kpps", "wakeups", "duty%", "TS µs"
    );

    let start = Instant::now();
    let mut sampler = Sampler::new(Nanos(WINDOW.as_nanos() as u64));
    let mut seq = 0u64;
    for window in 0..WINDOWS {
        // Quiet phase: ~5 kpps; plateau phase: ~50 kpps.
        let per_ms = if window < WINDOWS / 2 { 5 } else { 50 };
        let window_end = start + WINDOW * (window as u32 + 1);
        while Instant::now() < window_end {
            for _ in 0..per_ms {
                let _ = queues[0].push(seq);
                seq += 1;
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        // Close the window: snapshot the cumulative counters and print
        // the freshly derived per-window row.
        let mut snap = CounterSnapshot::new(Nanos(start.elapsed().as_nanos() as u64));
        hub.fill_snapshot(&mut snap);
        snap.occupancy = vec![queues[0].len() as u64];
        sampler.sample(snap);
        let w = &sampler.windows()[window];
        println!(
            "{:>6} {:>10} {:>10.1} {:>9} {:>8.1} {:>8.1}",
            w.index,
            w.retrieved,
            w.throughput_mpps() * 1e3,
            w.wakeups,
            w.duty_cycle() * 100.0,
            w.ts_us(),
        );
    }

    let stats = metronome.stop();
    let series = sampler.into_series();
    println!(
        "\nworkers processed {} items over {} windows",
        stats.total_processed(),
        series.len()
    );

    let exporters: [(&str, &dyn Exporter); 3] = [
        ("CSV", &CsvExporter),
        ("JSON", &JsonExporter),
        ("Prometheus", &PrometheusExporter),
    ];
    for (name, exporter) in exporters {
        let out = exporter.export(&series);
        let preview: String = out.lines().take(4).collect::<Vec<_>>().join("\n");
        println!(
            "\n--- {name} export (.{}, first lines) ---",
            exporter.file_ext()
        );
        println!("{preview}");
    }
}
