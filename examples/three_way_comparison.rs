//! Static DPDK vs Metronome vs XDP on the same workload (Fig. 10 in
//! miniature): who wins on CPU, who wins on latency, and where the
//! crossovers sit.
//!
//! ```text
//! cargo run --release --example three_way_comparison [gbps] [--realtime]
//! ```
//!
//! With `--realtime`, the 1 Gbps cell additionally runs on real threads
//! (×1000-scaled rate, so ≈1.5 kpps of real frames) with each system
//! mapped onto its retrieval discipline — busy-polling workers for
//! static, the Listing 2 engine for Metronome, doorbell-parked
//! interrupt workers for XDP — and the table shows the simulated and
//! measured numbers side by side.

use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::nic::gbps_to_pps;
use metronome_repro::runtime::{run, run_realtime, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;

fn scenarios(gbps: f64, traffic: TrafficSpec) -> [Scenario; 3] {
    [
        Scenario::static_dpdk("static", 1, traffic.clone()),
        Scenario::metronome("metronome", MetronomeConfig::default(), traffic.clone()),
        Scenario::xdp("xdp", if gbps >= 5.0 { 4 } else { 1 }, traffic),
    ]
}

fn main() {
    let mut gbps: f64 = 10.0;
    let mut realtime = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--realtime" => realtime = true,
            other => {
                if let Ok(v) = other.parse() {
                    gbps = v;
                }
            }
        }
    }
    let dur = Nanos::from_secs(1);

    println!("l3fwd at {gbps} Gbps of 64 B frames, 1 s simulated:\n");
    println!("  system      tput[Mpps]  loss[‰]  CPU[%]  power[W]  latency mean/median [µs]");
    println!("  ----------  ----------  -------  ------  --------  ------------------------");
    for sc in scenarios(gbps, TrafficSpec::CbrGbps(gbps)) {
        let r = run(&sc.with_duration(dur).with_latency_stride(127));
        let lat = r.latency_us.expect("latency sampled");
        println!(
            "  {:<10}  {:10.2}  {:7.3}  {:6.1}  {:8.2}  {:.2} / {:.2}",
            r.name,
            r.throughput_mpps,
            r.loss_permille(),
            r.cpu_total_pct,
            r.power_watts,
            lat.mean,
            lat.median
        );
    }

    if realtime {
        // The 1 Gbps cell, simulated and measured: the same Scenario
        // values run through the realtime runner at a ×1000-scaled rate
        // (an in-process generator paces kpps faithfully, not Mpps), so
        // the comparison is about CPU *shape*, not absolute throughput.
        let rt_kpps = gbps_to_pps(1.0, 64) / 1e3;
        println!("\nsim vs realtime, 1 Gbps cell (realtime at ×1000-scaled rate, 1 s wall):\n");
        println!(
            "  system      sim CPU[%]  rt CPU[%]  sim loss[‰]  rt loss[‰]  rt tput[kpps]  rt wakes"
        );
        println!(
            "  ----------  ----------  ---------  -----------  ----------  -------------  --------"
        );
        let sims = scenarios(1.0, TrafficSpec::CbrGbps(1.0));
        let reals = scenarios(1.0, TrafficSpec::CbrPps(rt_kpps));
        for (sim_sc, rt_sc) in sims.into_iter().zip(reals) {
            let sim = run(&sim_sc.with_duration(dur).with_latency_stride(127));
            let rt = run_realtime(&rt_sc.with_duration(dur).with_latency());
            println!(
                "  {:<10}  {:10.1}  {:9.1}  {:11.3}  {:10.3}  {:13.2}  {:8}",
                sim.name,
                sim.cpu_total_pct,
                rt.cpu_total_pct,
                sim.loss_permille(),
                rt.loss_permille(),
                rt.throughput_mpps * 1e3,
                rt.total_wakes,
            );
        }
        println!(
            "\nSame ordering on both backends: busy polling burns its core either \
             way, Metronome's measured duty cycle tracks the (scaled) load, and \
             the interrupt discipline only pays when packets arrive."
        );
    }

    println!(
        "\nThe paper's trade-off in one table: static buys the lowest latency \
         with a permanently burned core; Metronome buys back the CPU at a \
         bounded latency cost; XDP only pays CPU when packets arrive but \
         pays interrupt latency under load."
    );
}
