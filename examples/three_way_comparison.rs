//! Static DPDK vs Metronome vs XDP on the same workload (Fig. 10 in
//! miniature): who wins on CPU, who wins on latency, and where the
//! crossovers sit.
//!
//! ```text
//! cargo run --release --example three_way_comparison [gbps]
//! ```

use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;

fn main() {
    let gbps: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let dur = Nanos::from_secs(1);
    let traffic = TrafficSpec::CbrGbps(gbps);

    println!("l3fwd at {gbps} Gbps of 64 B frames, 1 s simulated:\n");
    println!("  system      tput[Mpps]  loss[‰]  CPU[%]  power[W]  latency mean/median [µs]");
    println!("  ----------  ----------  -------  ------  --------  ------------------------");

    let scenarios = [
        Scenario::static_dpdk("static", 1, traffic.clone()),
        Scenario::metronome("metronome", MetronomeConfig::default(), traffic.clone()),
        Scenario::xdp("xdp", if gbps >= 5.0 { 4 } else { 1 }, traffic),
    ];
    for sc in scenarios {
        let r = run(&sc.with_duration(dur).with_latency_stride(127));
        let lat = r.latency_us.expect("latency sampled");
        println!(
            "  {:<10}  {:10.2}  {:7.3}  {:6.1}  {:8.2}  {:.2} / {:.2}",
            r.name,
            r.throughput_mpps,
            r.loss_permille(),
            r.cpu_total_pct,
            r.power_watts,
            lat.mean,
            lat.median
        );
    }
    println!(
        "\nThe paper's trade-off in one table: static buys the lowest latency \
         with a permanently burned core; Metronome buys back the CPU at a \
         bounded latency cost; XDP only pays CPU when packets arrive but \
         pays interrupt latency under load."
    );
}
