//! Flight-recorder quickstart: run a short traced realtime scenario and
//! write the merged Chrome trace-event dump — load the output in
//! `chrome://tracing` or <https://ui.perfetto.dev> to see each worker's
//! turn verdicts, sleeps (as spans), drained bursts, and wake latencies
//! on its own timeline.
//!
//! ```text
//! cargo run --release --example trace_dump [-- trace.json]
//! ```
//!
//! Prints the per-worker event summary (counts, ring overflow, histogram
//! quantiles) to stdout and writes the full Chrome document to the path
//! given as the first argument (default `trace.json`).

use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run_realtime, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;
use metronome_repro::telemetry::TraceEventKind;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".into());
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 2,
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome("trace-quickstart", cfg, TrafficSpec::CbrPps(60_000.0))
        .with_duration(Nanos::from_millis(200))
        .with_trace()
        .with_seed(0x7ACE);
    let r = run_realtime(&sc);
    let dump = r.trace.as_ref().expect("scenario armed tracing");

    println!(
        "{} packets forwarded in {:.0} ms; {} trace events across {} workers ({} overwritten)\n",
        r.forwarded,
        r.duration.as_secs_f64() * 1e3,
        dump.total_events(),
        dump.workers.len(),
        dump.total_dropped(),
    );
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9}",
        "worker", "events", "verdicts", "sleeps", "bursts"
    );
    for w in &dump.workers {
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9}",
            w.worker,
            w.events.len(),
            w.kind_count(TraceEventKind::TurnVerdict),
            w.kind_count(TraceEventKind::Sleep),
            w.kind_count(TraceEventKind::Burst),
        );
    }
    let wake = dump.wake_latency();
    let over = dump.oversleep();
    println!(
        "\nwake-to-first-poll p50/p99: {:.1}/{:.1} µs, oversleep p50/p99: {:.1}/{:.1} µs",
        wake.quantile(0.5).unwrap_or(0) as f64 / 1e3,
        wake.quantile(0.99).unwrap_or(0) as f64 / 1e3,
        over.quantile(0.5).unwrap_or(0) as f64 / 1e3,
        over.quantile(0.99).unwrap_or(0) as f64 / 1e3,
    );

    let chrome = dump.chrome_json().render();
    std::fs::write(&out_path, &chrome).expect("write trace dump");
    println!(
        "\nwrote {} ({} bytes) — open it in chrome://tracing or https://ui.perfetto.dev",
        out_path,
        chrome.len()
    );
}
