//! # metronome-repro — reproduction of *Metronome* (CoNEXT 2020)
//!
//! Faltelli, Belocchi, Quaglia, Pontarelli, Bianchi: **"Metronome: adaptive
//! and precise intermittent packet retrieval in DPDK"** — reproduced as a
//! pure-Rust workspace. This facade crate re-exports every layer; see
//! `README.md` for the architecture tour, `DESIGN.md` for the system
//! inventory and experiment index, and `EXPERIMENTS.md` for paper-vs-
//! measured results.
//!
//! ## Layers
//!
//! * [`sim`] — deterministic discrete-event engine (time, events, PRNG,
//!   statistics).
//! * [`net`] — protocol substrate: headers, Toeplitz RSS, DIR-24-8 LPM,
//!   exact match, AES-128-CBC + ESP.
//! * [`dpdk`] — DPDK-like substrate: mbufs, mempools, descriptor rings,
//!   NIC models (X520/XL710), Tx batching.
//! * [`os`] — OS model: CFS-like scheduler, hr_sleep/nanosleep, governors,
//!   RAPL-style power.
//! * [`traffic`] — MoonGen-like workloads: CBR (paced and bursty),
//!   Poisson, ramps, the Table III unbalanced trace.
//! * [`core`] — **the paper's contribution**: trylock racing,
//!   primary/backup timeouts, the analytical model (eqs. 1–14), the
//!   adaptive `TS` controller, and a real-`std::thread` runtime.
//! * [`apps`] — l3fwd, IPsec gateway, FloWatcher, the ferret co-tenant.
//! * [`runtime`] — whole-system scenarios: Metronome vs static DPDK vs
//!   XDP under any workload, with CPU/power/latency/loss reporting.
//! * [`telemetry`] — windowed time-series metrics on both backends:
//!   lock-light counters, a fixed-interval sampler, CSV/JSON/Prometheus
//!   exporters.
//!
//! ## Quick start
//!
//! Simulated (deterministic, no threads):
//!
//! ```
//! use metronome_repro::runtime::{run, Scenario, TrafficSpec};
//! use metronome_repro::core::MetronomeConfig;
//! use metronome_repro::sim::Nanos;
//!
//! let scenario = Scenario::metronome(
//!     "demo",
//!     MetronomeConfig::default(),
//!     TrafficSpec::CbrGbps(10.0),
//! )
//! .with_duration(Nanos::from_millis(200));
//! let report = run(&scenario);
//! assert!(report.loss < 1e-3);
//! assert!(report.cpu_total_pct < 100.0); // line rate on less than a core
//! ```
//!
//! Real threads: see [`core::realtime::Metronome`] and
//! `examples/quickstart.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use metronome_apps as apps;
pub use metronome_core as core;
pub use metronome_dpdk as dpdk;
pub use metronome_net as net;
pub use metronome_os as os;
pub use metronome_runtime as runtime;
pub use metronome_sim as sim;
pub use metronome_telemetry as telemetry;
pub use metronome_traffic as traffic;
