//! The async executor backend, end to end.
//!
//! Three layers of evidence that the cooperative backend is the thread
//! backend's equal:
//!
//! 1. **Lockstep parity** — the async executor dispatches disciplines one
//!    `turn()` per scheduler visit. Driving `MetronomeDiscipline::turn`
//!    at exactly that granularity, single-threaded and in lockstep with
//!    the discrete-event simulator under identical arrivals and entropy,
//!    must reproduce every schedule-determined policy statistic — the
//!    async dispatch rule cannot perturb the protocol.
//! 2. **Scale** — 1024 queues with 1024 Metronome tasks on 2 executor
//!    shards: exact conservation and nonzero per-queue throughput, the
//!    workload the thread backend would need 1024 OS threads for.
//! 3. **Pipeline agreement** — `run_realtime` on `ExecBackend::Async`
//!    produces the same conservation identity, report shape, and (for the
//!    interrupt discipline) waker-driven parking as the thread backend.
//!
//! All assertions are correctness-based, never timing-based, so they hold
//! on loaded 1-core machines.

mod common;

use common::{push_all, serial};
use crossbeam::queue::ArrayQueue;
use metronome_repro::core::config::MetronomeConfig;
use metronome_repro::core::controller::AdaptiveController;
use metronome_repro::core::discipline::{MetronomeDiscipline, RetrievalDiscipline, Verdict};
use metronome_repro::core::engine::{Backend, EngineOp, MetronomeEngine, StepCosts};
use metronome_repro::core::realtime::RealtimeHarness;
use metronome_repro::core::{AsyncMetronome, DisciplineSpec, Role};
use metronome_repro::runtime::{
    run_realtime, AppProfile, Scenario, SimQueue, TrafficSpec, World, WorldBackend,
};
use metronome_repro::sim::{Nanos, Rng};
use metronome_repro::telemetry::NullSink;
use metronome_repro::traffic::Cbr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wraps any backend, overriding only its entropy source so the sim and
/// async sides draw the same backup-queue picks (the same harness
/// `tests/engine_parity.rs` uses).
struct FixedEntropy<'a, B> {
    inner: B,
    draws: &'a mut Rng,
}

impl<B: Backend> Backend for FixedEntropy<'_, B> {
    fn n_queues(&self) -> usize {
        self.inner.n_queues()
    }

    fn draw(&mut self) -> u64 {
        self.draws.next_u64()
    }

    fn try_acquire(&mut self, q: usize) -> bool {
        self.inner.try_acquire(q)
    }

    fn rx_burst(&mut self, q: usize, burst: u32) -> u64 {
        self.inner.rx_burst(q, burst)
    }

    fn chunk_cost(&self, k: u64) -> u64 {
        self.inner.chunk_cost(k)
    }

    fn chunk_done(&mut self, q: usize, k: u64) {
        self.inner.chunk_done(q, k)
    }

    fn release(&mut self, q: usize) -> Nanos {
        self.inner.release(q)
    }

    fn before_contend(&mut self, q: usize) {
        self.inner.before_contend(q)
    }

    fn ts(&self, q: usize) -> Nanos {
        self.inner.ts(q)
    }

    fn tl(&self) -> Nanos {
        self.inner.tl()
    }

    fn equal_timeouts(&self) -> bool {
        self.inner.equal_timeouts()
    }

    fn stagger(&mut self) -> Nanos {
        self.inner.stagger()
    }

    fn costs(&self) -> StepCosts {
        self.inner.costs()
    }
}

const M_THREADS: usize = 3;
const N_QUEUES: usize = 2;
const PPS_PER_QUEUE: u64 = 100_000;
const STEPS: u64 = 20_000; // 20 ms of 1 µs lockstep ticks
const CAPACITY: usize = 4096;

/// The async executor's dispatch granularity — one `turn()` per
/// scheduler visit, requeue on `Continue` — produces bit-identical
/// policy statistics to the simulator under a deterministic lockstep
/// schedule. This is the sim-vs-async counterpart of
/// `sim_and_realtime_backends_agree_on_policy_statistics`.
#[test]
fn async_turn_granularity_matches_the_sim_in_lockstep() {
    let cfg = MetronomeConfig {
        m_threads: M_THREADS,
        n_queues: N_QUEUES,
        ..MetronomeConfig::default()
    };

    // --- sim side: the discrete-event world ------------------------------
    let queues: Vec<SimQueue> = (0..N_QUEUES)
        .map(|_| {
            SimQueue::new(
                CAPACITY,
                Box::new(Cbr::new(PPS_PER_QUEUE as f64, Nanos::ZERO)),
                32,
                0,
            )
        })
        .collect();
    let mut world = World::new(
        queues,
        AdaptiveController::new(cfg.clone()),
        Nanos::ZERO,
        0xDE7,
    );
    let mut sim_rng = Rng::new(0x51A7);
    let app = AppProfile::l3fwd();

    // --- async side: disciplines over trylocks + ArrayQueues, no threads --
    let rt_queues: Vec<Arc<ArrayQueue<u64>>> = (0..N_QUEUES)
        .map(|_| Arc::new(ArrayQueue::new(CAPACITY)))
        .collect();
    let harness = RealtimeHarness::new(cfg.clone(), rt_queues.clone(), |_q, _b: &mut Vec<u64>| {});
    let mut rt_backends: Vec<_> = (0..M_THREADS).map(|_| harness.backend()).collect();

    let mut sim_engines: Vec<_> = (0..M_THREADS)
        .map(|i| MetronomeEngine::new(i % N_QUEUES, cfg.burst))
        .collect();
    // The async backend's task state: the *discipline* adapter, turned
    // exactly once per visit like `run_shard` does.
    let mut rt_tasks: Vec<_> = (0..M_THREADS)
        .map(|i| MetronomeDiscipline::new(i % N_QUEUES, cfg.burst))
        .collect();
    let mut sim_draws = Rng::new(0xE417_0911);
    let mut rt_draws = Rng::new(0xE417_0911);

    // --- one deterministic schedule: lockstep round-robin ----------------
    let mut mirrored = [0u64; N_QUEUES];
    for tick in 1..=STEPS {
        let now = Nanos::from_micros(tick);
        let due = tick / 10 + 1;
        for (q, rt_queue) in rt_queues.iter().enumerate() {
            while mirrored[q] < due {
                rt_queue
                    .push(mirrored[q])
                    .expect("mirror queue must not overflow");
                mirrored[q] += 1;
            }
        }
        for i in 0..M_THREADS {
            let world_backend = WorldBackend {
                world: &mut world,
                rng: &mut sim_rng,
                now,
                tid: i,
                app,
            };
            sim_engines[i].step(&mut FixedEntropy {
                inner: world_backend,
                draws: &mut sim_draws,
            });
            rt_tasks[i].turn(
                &mut FixedEntropy {
                    inner: &mut rt_backends[i],
                    draws: &mut rt_draws,
                },
                &NullSink,
            );
        }
    }

    // Settle both sides to the next turn boundary (a sleep decision), so
    // every turn is fully on the controller's books. One engine step maps
    // onto one discipline turn (Work↔Continue, Sleep↔Sleep, Wait↔Wait),
    // so the verdict kind must track the op kind step for step.
    let now = Nanos::from_micros(STEPS);
    for i in 0..M_THREADS {
        loop {
            let sim_op = sim_engines[i].step(&mut FixedEntropy {
                inner: WorldBackend {
                    world: &mut world,
                    rng: &mut sim_rng,
                    now,
                    tid: i,
                    app,
                },
                draws: &mut sim_draws,
            });
            let rt_verdict = rt_tasks[i].turn(
                &mut FixedEntropy {
                    inner: &mut rt_backends[i],
                    draws: &mut rt_draws,
                },
                &NullSink,
            );
            match (&sim_op, &rt_verdict) {
                (EngineOp::Work(_), Verdict::Continue)
                | (EngineOp::Sleep(_), Verdict::Sleep(_))
                | (EngineOp::Wait(_), Verdict::Wait(_)) => {}
                other => panic!("task {i} diverged while settling: {other:?}"),
            }
            if matches!(sim_op, EngineOp::Sleep(_)) {
                break;
            }
        }
    }

    // --- the schedule must actually have exercised the protocol ----------
    let total_won: u64 = sim_engines.iter().map(|e| e.policy().races_won).sum();
    let total_lost: u64 = sim_engines.iter().map(|e| e.policy().races_lost).sum();
    assert!(
        total_won > 100,
        "schedule produced too few wins: {total_won}"
    );
    assert!(total_lost > 0, "schedule never exercised a lost race");
    assert!(
        sim_engines
            .iter()
            .any(|e| e.policy().role() == Role::Primary),
        "somebody must end primary"
    );

    // --- per-task policy parity -------------------------------------------
    for (i, (sim, rt)) in sim_engines.iter().zip(&rt_tasks).enumerate() {
        let (s, r) = (sim.policy(), rt.policy());
        assert_eq!(s.wakes, r.wakes, "task {i} wakes diverged");
        assert_eq!(s.races_won, r.races_won, "task {i} wins diverged");
        assert_eq!(s.races_lost, r.races_lost, "task {i} losses diverged");
        assert_eq!(
            s.empty_polls, r.empty_polls,
            "task {i} empty polls diverged"
        );
        assert_eq!(
            s.role_transitions, r.role_transitions,
            "task {i} role transitions diverged"
        );
        assert_eq!(s.role(), r.role(), "task {i} final role diverged");
        assert_eq!(
            s.queue_to_contend(),
            r.queue_to_contend(),
            "task {i} next queue diverged"
        );
    }

    // --- controller and drain parity --------------------------------------
    for q in 0..N_QUEUES {
        assert_eq!(
            world.controller.queue(q).total_tries,
            harness.total_tries(q),
            "queue {q} acquisitions diverged"
        );
        assert_eq!(
            world.controller.queue(q).busy_tries,
            harness.busy_tries(q),
            "queue {q} busy tries diverged"
        );
        assert_eq!(
            world.queues[q].drained_total(),
            harness.processed(q),
            "queue {q} drained counts diverged"
        );
    }
}

/// 1024 queues, 1024 Metronome tasks, 2 executor shards: every queue
/// drains completely (nonzero per-queue throughput) and conservation is
/// exact. The thread backend would need 1024 OS threads for this shape.
#[test]
fn a_thousand_queues_conserve_on_two_shards() {
    let _guard = serial();
    const N: usize = 1024;
    const PER_QUEUE: u64 = 32;
    let cfg = MetronomeConfig {
        m_threads: N,
        n_queues: N,
        ..MetronomeConfig::default()
    };
    let queues: Vec<Arc<ArrayQueue<u64>>> = (0..N).map(|_| Arc::new(ArrayQueue::new(64))).collect();
    for (q, queue) in queues.iter().enumerate() {
        push_all(queue, (0..PER_QUEUE).map(|i| q as u64 * PER_QUEUE + i));
    }
    let m = AsyncMetronome::start_discipline_scoped(
        cfg,
        DisciplineSpec::Metronome,
        queues.clone(),
        |_worker| |_q: usize, burst: &mut Vec<u64>| burst.clear(),
        2,
    );
    let offered = N as u64 * PER_QUEUE;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let processed: u64 = (0..N).map(|q| m.processed(q)).sum();
        if processed >= offered || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = m.stop();
    assert_eq!(
        stats.total_processed(),
        offered,
        "conservation: every offered item processed exactly once"
    );
    for q in 0..N {
        assert_eq!(
            stats.processed[q], PER_QUEUE,
            "queue {q} did not drain completely"
        );
    }
    assert!(queues.iter().all(|q| q.is_empty()), "items left behind");
}

/// The same small scenario through `run_realtime` on both backends: the
/// async report must carry the thread report's shape and satisfy the same
/// conservation identity with zero loss at this load.
#[test]
fn thread_and_async_backends_agree_end_to_end() {
    let _guard = serial();
    let make = |name: &str| {
        Scenario::metronome(
            name,
            MetronomeConfig::multiqueue(2, 2),
            TrafficSpec::CbrPps(40_000.0),
        )
        .with_duration(Nanos::from_millis(200))
        .with_seed(0xA51)
    };
    let threads = run_realtime(&make("rt-exec-threads"));
    let asynced = run_realtime(&make("rt-exec-async").with_async_backend(2));

    for r in [&threads, &asynced] {
        assert!(r.forwarded > 0, "{}: no packets processed", r.name);
        assert_eq!(r.offered, r.forwarded + r.dropped, "{}: leaked", r.name);
        assert_eq!(r.dropped, 0, "{}: unexpected drops at 40 kpps", r.name);
        assert_eq!(r.queues.len(), 2, "{}: queue columns", r.name);
    }
    // Identical seeds and schedules: both backends saw the same offered
    // load, and the report keeps one CPU column per worker either way.
    assert_eq!(threads.offered, asynced.offered, "offered load diverged");
    assert_eq!(
        threads.cpu_per_thread_pct.len(),
        asynced.cpu_per_thread_pct.len(),
        "worker accounting columns diverged"
    );
    assert!(asynced.total_wakes > 0, "async workers never slept/woke");
}

/// The interrupt discipline on the async backend: workers park as waker
/// registrations on the ring doorbells, the producer-side wake hook fires
/// them, and the full pipeline still conserves with zero loss.
#[test]
fn interrupt_discipline_parks_through_wakers_end_to_end() {
    let _guard = serial();
    // A deep ring: at 40 kpps the default 512-slot ring overflows if the
    // shard thread is descheduled for ~13 ms, which a loaded 1-core host
    // does occasionally. 4096 slots buy ~100 ms of scheduling slack so
    // the zero-drop assertion tests the wake path, not the host's mood.
    let sc = Scenario::xdp("rt-async-interrupt", 1, TrafficSpec::CbrPps(40_000.0))
        .with_duration(Nanos::from_millis(200))
        .with_seed(0x1D1F)
        .with_ring(4096)
        .with_async_backend(1);
    let r = run_realtime(&sc);
    assert!(r.forwarded > 0, "no packets processed");
    assert_eq!(r.offered, r.forwarded + r.dropped, "packets leaked");
    assert_eq!(r.dropped, 0, "unexpected drops at 40 kpps");
    assert!(r.total_wakes > 0, "doorbells never woke a parked task");

    // And with no traffic at all, a parked task costs ~nothing: the waker
    // registration replaces the blocked OS thread, same CPU bar as the
    // thread backend's idle interrupt worker.
    let idle = Scenario::xdp("rt-async-interrupt-idle", 1, TrafficSpec::Silent)
        .with_duration(Nanos::from_millis(200))
        .with_seed(0x1D20)
        .with_async_backend(1);
    let r = run_realtime(&idle);
    assert_eq!(r.offered, 0);
    assert_eq!(r.forwarded, 0);
    assert!(
        r.cpu_total_pct < 5.0,
        "parked async worker should be ~free, got {:.2}%",
        r.cpu_total_pct
    );
}
