//! Burst-vs-per-packet parity: the burst refactor must change *how fast*
//! the datapath runs, never *what it computes*.
//!
//! Two layers are pinned down:
//!
//! * **Processor layer** — `PacketProcessor::process_burst` (including
//!   l3fwd's bulk-LPM override) must be observably equivalent to the
//!   per-packet `process` loop: identical verdict counts, identical frame
//!   rewrites, identical internal counters (the contract documented on
//!   the trait).
//! * **Pipeline layer** — a realtime run at `burst = 1` (every packet is
//!   its own burst: per-packet pool transactions, per-packet process
//!   calls) must produce the same `RunReport` packet counts as the same
//!   scenario at `burst = 32`, given a ring and pool sized so nothing
//!   drops: the offered count is schedule-exact and everything offered is
//!   forwarded, at any burst size.

mod common;

use common::serial;
use metronome_repro::apps::processor::{BurstVerdicts, PacketProcessor};
use metronome_repro::apps::L3Fwd;
use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::Mbuf;
use metronome_repro::net::headers::{build_udp_frame, Mac};
use metronome_repro::net::FiveTuple;
use metronome_repro::runtime::{run_realtime, RunReport, Scenario, TrafficSpec};
use metronome_repro::sim::{Nanos, Rng};
use std::net::Ipv4Addr;

/// A pseudo-random frame mix: routable, unroutable, and garbage frames.
fn frame_mix(n: usize, seed: u64) -> Vec<Mbuf> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            match rng.below(8) {
                // Truncated garbage (parse failure).
                0 => Mbuf::from_bytes(bytes::BytesMut::from(&[0u8; 13][..])),
                // Unroutable destination.
                1 => {
                    let t = FiveTuple::udp(
                        Ipv4Addr::new(192, 168, 0, 1),
                        4000 + i as u16,
                        Ipv4Addr::new(172, 16, 0, 1),
                        80,
                    );
                    Mbuf::from_bytes(build_udp_frame(Mac::local(1), Mac::local(2), &t, &[], 64))
                }
                // Routable into one of the sample /16s (or its carve-out).
                _ => {
                    let h = (rng.below(4)) as u8;
                    let t = FiveTuple::udp(
                        Ipv4Addr::new(192, 168, 0, 1),
                        4000 + i as u16,
                        Ipv4Addr::new(10, h, if rng.below(4) == 0 { 7 } else { 1 }, 9),
                        80,
                    );
                    Mbuf::from_bytes(build_udp_frame(Mac::local(1), Mac::local(2), &t, &[], 64))
                }
            }
        })
        .collect()
}

#[test]
fn l3fwd_burst_override_matches_scalar_loop_on_random_mixes() {
    for seed in [1u64, 7, 0xBEEF, 0x5EED] {
        let mut scalar = L3Fwd::with_sample_routes(4);
        let mut scalar_frames = frame_mix(97, seed); // non-multiple of 32
        let mut scalar_verdicts = BurstVerdicts::default();
        for m in &mut scalar_frames {
            scalar_verdicts.count(scalar.process(m));
        }

        let mut batched = L3Fwd::with_sample_routes(4);
        let mut batched_frames = frame_mix(97, seed);
        let mut batched_verdicts = BurstVerdicts::default();
        // Feed in bursts of 32 (with a ragged tail), like the worker does.
        for chunk in batched_frames.chunks_mut(32) {
            let v = batched.process_burst(chunk);
            batched_verdicts.forwarded += v.forwarded;
            batched_verdicts.dropped += v.dropped;
        }

        assert_eq!(batched_verdicts, scalar_verdicts, "seed {seed}");
        assert_eq!(batched.forwarded, scalar.forwarded, "seed {seed}");
        assert_eq!(batched.dropped, scalar.dropped, "seed {seed}");
        for (i, (a, b)) in scalar_frames.iter().zip(&batched_frames).enumerate() {
            assert_eq!(a.bytes(), b.bytes(), "frame {i} rewrite diverged");
            assert_eq!(a.port, b.port, "frame {i} egress diverged");
        }
    }
}

/// Run the same no-drop scenario at the given burst size.
fn lossless_run(burst: u32) -> RunReport {
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        burst,
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome(
        format!("parity-burst-{burst}"),
        cfg,
        TrafficSpec::CbrPps(30_000.0),
    )
    .with_duration(Nanos::from_millis(200))
    .with_ring(4096)
    .with_mbuf_pool(16_384)
    .with_latency()
    .with_seed(0x009A_8177);
    run_realtime(&sc)
}

#[test]
fn realtime_counts_agree_at_burst_1_and_32() {
    let _guard = serial();
    let one = lossless_run(1);
    let thirty_two = lossless_run(32);

    // The offered count is schedule-exact: same seed, same schedule.
    assert_eq!(one.offered, thirty_two.offered, "schedules diverged");
    // Nothing may drop in either run — ring and pool are oversized.
    assert_eq!(one.dropped, 0, "burst=1 dropped");
    assert_eq!(thirty_two.dropped, 0, "burst=32 dropped");
    assert_eq!(one.dropped_pool, 0);
    assert_eq!(thirty_two.dropped_pool, 0);
    // Therefore the forwarded counts are identical.
    assert_eq!(one.forwarded, thirty_two.forwarded);
    assert_eq!(one.forwarded, one.offered);
    // Per-queue accounting matches the aggregate on both.
    for r in [&one, &thirty_two] {
        let per_queue: u64 = r.queues.iter().map(|q| q.drained + q.dropped).sum();
        assert_eq!(per_queue, r.offered);
    }
    // Latency measured every packet on both paths.
    assert_eq!(one.latency_us.as_ref().unwrap().count as u64, one.forwarded);
    assert_eq!(
        thirty_two.latency_us.as_ref().unwrap().count as u64,
        thirty_two.forwarded
    );
    // The pool audit is visible in both reports.
    for r in [&one, &thirty_two] {
        let m = r.mempool.as_ref().expect("realtime reports pool stats");
        assert_eq!(m.allocs, m.frees, "pool must balance after the run");
        assert!(m.in_use_peak > 0);
        assert_eq!(m.alloc_failures, 0);
    }
}
