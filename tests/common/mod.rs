//! Helpers shared by the root integration tests.
//!
//! Each test binary that declares `mod common;` compiles its own copy, so
//! the `SERIAL` lock serializes tests *within* one binary (cargo runs the
//! binaries themselves sequentially). The CI realtime job additionally
//! passes `--test-threads=1`; locally, the guard keeps `cargo test`
//! correct when several thread-spawning tests share this machine's cores.

#![allow(dead_code)] // each binary uses the subset it needs

use crossbeam::queue::ArrayQueue;
use std::sync::{Mutex, MutexGuard, PoisonError};

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialize tests that spawn spinning worker threads: they would steal
/// each other's cores and flake on small machines if run concurrently.
pub fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Push every item, yielding on a full queue until it fits (a patient
/// producer for tests that must not lose traffic).
pub fn push_all<T>(q: &ArrayQueue<T>, items: impl Iterator<Item = T>) {
    for mut item in items {
        loop {
            match q.push(item) {
                Ok(()) => break,
                Err(v) => {
                    item = v;
                    std::thread::yield_now();
                }
            }
        }
    }
}
