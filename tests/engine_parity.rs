//! Sim-vs-realtime engine parity.
//!
//! The whole point of the unified execution core: the *same*
//! `MetronomeEngine` must behave identically whether its `Backend` is the
//! discrete-event world or the real-thread substrate. This test drives
//! both backends single-threaded under one deterministic schedule —
//! identical step interleaving, identical arrivals, identical entropy —
//! and asserts that every engine reports identical role transitions and
//! race win/loss statistics, and that both controllers record identical
//! try accounting.
//!
//! Durations legitimately differ between the backends (virtual nanoseconds
//! vs wall-clock instants feed the estimator), so ρ/TS values are *not*
//! compared; everything schedule-determined must match exactly.

use crossbeam::queue::ArrayQueue;
use metronome_repro::core::config::MetronomeConfig;
use metronome_repro::core::controller::AdaptiveController;
use metronome_repro::core::engine::{Backend, EngineOp, MetronomeEngine, StepCosts};
use metronome_repro::core::realtime::RealtimeHarness;
use metronome_repro::core::Role;
use metronome_repro::runtime::{AppProfile, SimQueue, World, WorldBackend};
use metronome_repro::sim::{Nanos, Rng};
use metronome_repro::traffic::Cbr;
use std::sync::Arc;

/// Wraps any backend, overriding only its entropy source so the sim and
/// realtime sides draw the same backup-queue picks.
struct FixedEntropy<'a, B> {
    inner: B,
    draws: &'a mut Rng,
}

impl<B: Backend> Backend for FixedEntropy<'_, B> {
    fn n_queues(&self) -> usize {
        self.inner.n_queues()
    }

    fn draw(&mut self) -> u64 {
        self.draws.next_u64()
    }

    fn try_acquire(&mut self, q: usize) -> bool {
        self.inner.try_acquire(q)
    }

    fn rx_burst(&mut self, q: usize, burst: u32) -> u64 {
        self.inner.rx_burst(q, burst)
    }

    fn chunk_cost(&self, k: u64) -> u64 {
        self.inner.chunk_cost(k)
    }

    fn chunk_done(&mut self, q: usize, k: u64) {
        self.inner.chunk_done(q, k)
    }

    fn release(&mut self, q: usize) -> Nanos {
        self.inner.release(q)
    }

    fn before_contend(&mut self, q: usize) {
        self.inner.before_contend(q)
    }

    fn ts(&self, q: usize) -> Nanos {
        self.inner.ts(q)
    }

    fn tl(&self) -> Nanos {
        self.inner.tl()
    }

    fn equal_timeouts(&self) -> bool {
        self.inner.equal_timeouts()
    }

    fn stagger(&mut self) -> Nanos {
        self.inner.stagger()
    }

    fn costs(&self) -> StepCosts {
        self.inner.costs()
    }
}

const M_THREADS: usize = 3;
const N_QUEUES: usize = 2;
// One arrival per 10 µs per queue: slow enough relative to the 1 µs
// lockstep tick that drains complete and primaries release (a tick
// executes one engine step, so a rate of one packet per tick would keep
// the drain loop saturated forever).
const PPS_PER_QUEUE: u64 = 100_000;
const STEPS: u64 = 20_000; // 20 ms of 1 µs lockstep ticks
const CAPACITY: usize = 4096; // largest valid ring; nothing tail-drops at these rates

#[test]
fn sim_and_realtime_backends_agree_on_policy_statistics() {
    let cfg = MetronomeConfig {
        m_threads: M_THREADS,
        n_queues: N_QUEUES,
        ..MetronomeConfig::default()
    };

    // --- sim side: the discrete-event world ------------------------------
    let queues: Vec<SimQueue> = (0..N_QUEUES)
        .map(|_| {
            SimQueue::new(
                CAPACITY,
                Box::new(Cbr::new(PPS_PER_QUEUE as f64, Nanos::ZERO)),
                32,
                0,
            )
        })
        .collect();
    let mut world = World::new(
        queues,
        AdaptiveController::new(cfg.clone()),
        Nanos::ZERO,
        0xDE7,
    );
    let mut sim_rng = Rng::new(0x51A7);
    let app = AppProfile::l3fwd();

    // --- realtime side: trylocks + ArrayQueues, no threads ---------------
    let rt_queues: Vec<Arc<ArrayQueue<u64>>> = (0..N_QUEUES)
        .map(|_| Arc::new(ArrayQueue::new(CAPACITY)))
        .collect();
    let harness = RealtimeHarness::new(cfg.clone(), rt_queues.clone(), |_q, _b: &mut Vec<u64>| {});
    let mut rt_backends: Vec<_> = (0..M_THREADS).map(|_| harness.backend()).collect();

    // --- identical engines, identical entropy streams --------------------
    let mut sim_engines: Vec<_> = (0..M_THREADS)
        .map(|i| MetronomeEngine::new(i % N_QUEUES, cfg.burst))
        .collect();
    let mut rt_engines: Vec<_> = (0..M_THREADS)
        .map(|i| MetronomeEngine::new(i % N_QUEUES, cfg.burst))
        .collect();
    let mut sim_draws = Rng::new(0xE417_0911);
    let mut rt_draws = Rng::new(0xE417_0911);

    // --- one deterministic schedule: lockstep round-robin ----------------
    // Each tick advances virtual time 1 µs, mirrors the sim's CBR arrivals
    // into the realtime ArrayQueues, then gives every engine exactly one
    // step on each backend. Sleep/work durations are schedule-irrelevant:
    // both sides progress phase by phase in the same interleaving.
    let mut mirrored = [0u64; N_QUEUES];
    for tick in 1..=STEPS {
        let now = Nanos::from_micros(tick);
        // CBR(1e5, offset 0) has arrivals at k·10 µs: floor(now_us/10) + 1
        // packets have been emitted by `now`.
        let due = tick / 10 + 1;
        for (q, rt_queue) in rt_queues.iter().enumerate() {
            while mirrored[q] < due {
                rt_queue
                    .push(mirrored[q])
                    .expect("mirror queue must not overflow");
                mirrored[q] += 1;
            }
        }
        for i in 0..M_THREADS {
            let world_backend = WorldBackend {
                world: &mut world,
                rng: &mut sim_rng,
                now,
                tid: i,
                app,
            };
            sim_engines[i].step(&mut FixedEntropy {
                inner: world_backend,
                draws: &mut sim_draws,
            });
            rt_engines[i].step(&mut FixedEntropy {
                inner: &mut rt_backends[i],
                draws: &mut rt_draws,
            });
        }
    }

    // Drive every engine to its next turn boundary (a Sleep op) so no
    // turn is left half-recorded: the realtime backend records an
    // acquisition at release time (one controller critical section per
    // turn), the sim world at acquire time — at a boundary both have the
    // full turn on the books. Virtual time stays at the final tick, so no
    // new arrivals appear on either side.
    let now = Nanos::from_micros(STEPS);
    for i in 0..M_THREADS {
        loop {
            let sim_op = sim_engines[i].step(&mut FixedEntropy {
                inner: WorldBackend {
                    world: &mut world,
                    rng: &mut sim_rng,
                    now,
                    tid: i,
                    app,
                },
                draws: &mut sim_draws,
            });
            let rt_op = rt_engines[i].step(&mut FixedEntropy {
                inner: &mut rt_backends[i],
                draws: &mut rt_draws,
            });
            assert_eq!(
                std::mem::discriminant(&sim_op),
                std::mem::discriminant(&rt_op),
                "engine {i} op kind diverged while settling"
            );
            if matches!(sim_op, EngineOp::Sleep(_)) {
                break;
            }
        }
    }

    // --- the schedule must actually have exercised the protocol ----------
    let total_lost: u64 = sim_engines.iter().map(|e| e.policy().races_lost).sum();
    let total_won: u64 = sim_engines.iter().map(|e| e.policy().races_won).sum();
    assert!(
        total_won > 100,
        "schedule produced too few wins: {total_won}"
    );
    assert!(total_lost > 0, "schedule never exercised a lost race");
    assert!(
        sim_engines
            .iter()
            .any(|e| e.policy().role() == Role::Primary),
        "somebody must end primary"
    );

    // --- per-engine policy parity ----------------------------------------
    for (i, (sim, rt)) in sim_engines.iter().zip(&rt_engines).enumerate() {
        let (s, r) = (sim.policy(), rt.policy());
        assert_eq!(s.wakes, r.wakes, "engine {i} wakes diverged");
        assert_eq!(s.races_won, r.races_won, "engine {i} wins diverged");
        assert_eq!(s.races_lost, r.races_lost, "engine {i} losses diverged");
        assert_eq!(
            s.empty_polls, r.empty_polls,
            "engine {i} empty polls diverged"
        );
        assert_eq!(
            s.role_transitions, r.role_transitions,
            "engine {i} role transitions diverged"
        );
        assert_eq!(s.role(), r.role(), "engine {i} final role diverged");
        assert_eq!(
            s.queue_to_contend(),
            r.queue_to_contend(),
            "engine {i} next queue diverged"
        );
    }

    // --- controller try-accounting parity --------------------------------
    for q in 0..N_QUEUES {
        assert_eq!(
            world.controller.queue(q).total_tries,
            harness.total_tries(q),
            "queue {q} acquisitions diverged"
        );
        assert_eq!(
            world.controller.queue(q).busy_tries,
            harness.busy_tries(q),
            "queue {q} busy tries diverged"
        );
    }

    // --- both sides drained the same traffic ------------------------------
    for q in 0..N_QUEUES {
        assert_eq!(
            world.queues[q].drained_total(),
            harness.processed(q),
            "queue {q} drained counts diverged"
        );
    }
}

/// The equal-timeout ablation flows through the shared engine on the sim
/// backend: with the flag set, a loser's next sleep is TS, not TL.
#[test]
fn equal_timeout_flag_reaches_engine_through_world_backend() {
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        ..MetronomeConfig::default()
    };
    let q = SimQueue::new(512, Box::new(Cbr::new(1e6, Nanos::ZERO)), 32, 0);
    let mut world = World::new(
        vec![q],
        AdaptiveController::new(cfg.clone()),
        Nanos::ZERO,
        7,
    );
    world.equal_timeouts = true;
    let mut rng = Rng::new(3);
    let mut backend = WorldBackend {
        world: &mut world,
        rng: &mut rng,
        now: Nanos::from_micros(5),
        tid: 1,
        app: AppProfile::l3fwd(),
    };
    // Thread 0 "owns" the queue.
    assert!(backend.try_acquire(0));
    let ts = backend.ts(0);
    let mut loser = MetronomeEngine::new(0, 32);
    // Step the loser up to its sleep decision: Init (Wait), AfterSleep
    // (Work), TryAcquire (loses, Work), GoSleep (Sleep).
    use metronome_repro::core::engine::EngineOp;
    loser.step(&mut backend);
    loser.step(&mut backend);
    loser.step(&mut backend);
    let op = loser.step(&mut backend);
    assert_eq!(op, EngineOp::Sleep(ts), "ablated loser must sleep TS");
    assert_eq!(loser.policy().role(), Role::Backup);
}
