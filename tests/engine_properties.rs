//! Property tests of the `MetronomeEngine` protocol against arbitrary
//! scripted backends: invariants that must hold for *any* schedule of
//! lock contention, queue occupancy, and renewal-cycle observations — not
//! just the benign schedules the integration tests produce.
//!
//! The invariants mirror what the realtime runtime relies on:
//!
//! 1. **TS clamp** — every adaptive timeout the controller hands out
//!    stays within `[V̄, (M/N)·V̄]`, whatever ρ observations it was fed.
//! 2. **Win → exactly one drain + release** — a won race is followed by
//!    at least one `rx_burst` and exactly one `release` before the next
//!    sleep; bursts and releases never happen without holding the lock.
//! 3. **Stop safety** — at every `Sleep`/`Wait` boundary (the only points
//!    where a realtime worker may observe its stop flag and exit) the
//!    engine holds no lock and has no half-recorded turn, so a stopping
//!    worker can never strand a trylock.

use metronome_repro::core::config::MetronomeConfig;
use metronome_repro::core::controller::AdaptiveController;
use metronome_repro::core::engine::{Backend, EngineOp, MetronomeEngine};
use metronome_repro::sim::Nanos;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A backend whose every response is drawn from proptest-generated
/// scripts, wrapping the real `AdaptiveController` and asserting the
/// lock-discipline invariants inline.
struct ScriptedBackend {
    ctrl: AdaptiveController,
    /// The queue the engine currently holds, if any.
    held: Option<usize>,
    /// Per `try_acquire` call: does an (imaginary) rival hold the lock?
    contention: VecDeque<bool>,
    /// Per `rx_burst` call: packets available.
    avail: VecDeque<u64>,
    /// Per `release` call: the (vacation µs, busy µs) observation fed to
    /// the controller.
    cycles: VecDeque<(u64, u64)>,
    draw_state: u64,
    acquires: u64,
    releases: u64,
    bursts_since_acquire: u64,
    /// Every TS the controller handed out through `release`/`ts`.
    ts_seen: Vec<Nanos>,
}

impl ScriptedBackend {
    fn new(
        cfg: MetronomeConfig,
        contention: Vec<bool>,
        avail: Vec<u64>,
        cycles: Vec<(u64, u64)>,
    ) -> Self {
        ScriptedBackend {
            ctrl: AdaptiveController::new(cfg),
            held: None,
            contention: contention.into(),
            avail: avail.into(),
            cycles: cycles.into(),
            draw_state: 0x5EED,
            acquires: 0,
            releases: 0,
            bursts_since_acquire: 0,
            ts_seen: Vec::new(),
        }
    }
}

impl Backend for ScriptedBackend {
    fn n_queues(&self) -> usize {
        self.ctrl.n_queues()
    }

    fn draw(&mut self) -> u64 {
        self.draw_state = self
            .draw_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        self.draw_state >> 11
    }

    fn try_acquire(&mut self, q: usize) -> bool {
        assert!(
            self.held.is_none(),
            "engine raced for a lock while already holding one"
        );
        if self.contention.pop_front().unwrap_or(false) {
            self.ctrl.record_busy_try(q);
            false
        } else {
            self.held = Some(q);
            self.acquires += 1;
            self.bursts_since_acquire = 0;
            true
        }
    }

    fn rx_burst(&mut self, q: usize, burst: u32) -> u64 {
        assert_eq!(self.held, Some(q), "rx_burst without holding the lock");
        self.bursts_since_acquire += 1;
        self.avail.pop_front().unwrap_or(0).min(burst as u64)
    }

    fn release(&mut self, q: usize) -> Nanos {
        assert_eq!(self.held, Some(q), "release without holding the lock");
        assert!(
            self.bursts_since_acquire >= 1,
            "a won race must drain at least one burst before releasing"
        );
        self.held = None;
        self.releases += 1;
        let (vac, busy) = self.cycles.pop_front().unwrap_or((10, 10));
        self.ctrl.record_acquired(q);
        self.ctrl
            .record_cycle(q, Nanos::from_micros(vac), Nanos::from_micros(busy));
        let ts = self.ctrl.ts(q);
        self.ts_seen.push(ts);
        ts
    }

    fn ts(&self, q: usize) -> Nanos {
        self.ctrl.ts(q)
    }

    fn tl(&self) -> Nanos {
        self.ctrl.tl()
    }
}

proptest! {
    #[test]
    fn engine_invariants_hold_on_any_schedule(
        n_queues in 1usize..=3,
        extra_threads in 0usize..=3,
        contention in prop::collection::vec(any::<bool>(), 1..160),
        avail in prop::collection::vec(0u64..80, 1..160),
        cycles in prop::collection::vec((0u64..400, 0u64..400), 1..80),
    ) {
        let cfg = MetronomeConfig {
            m_threads: n_queues + extra_threads,
            n_queues,
            ..MetronomeConfig::default()
        };
        cfg.validate().unwrap();
        let tl = cfg.t_long;
        // TS bounds: eq. (13)/(14) clamp to [V̄, (M/N)·V̄]; ±1 ns covers
        // the controller's integer-nanosecond rounding.
        let ts_min = cfg.v_target.saturating_sub(Nanos(1));
        let ts_max = cfg
            .v_target
            .scaled_f64(cfg.m_threads as f64 / cfg.n_queues as f64)
            + Nanos(1);

        let mut b = ScriptedBackend::new(cfg, contention, avail, cycles);
        let mut engine = MetronomeEngine::new(0, 32);

        // Boundary invariants (plain asserts so the check can live in a
        // closure): stop safety — a worker exits only at sleep boundaries,
        // where it must hold no lock and have a fully recorded turn — and
        // sleep-duration discipline.
        let check_boundary = |b: &ScriptedBackend, dur: Option<Nanos>| {
            assert!(b.held.is_none(), "sleeping while holding a lock");
            assert_eq!(
                b.acquires, b.releases,
                "a won race was not followed by exactly one release"
            );
            if let Some(dur) = dur {
                // A sleep is either the fixed TL (lost race) or a clamped
                // adaptive TS (won race).
                assert!(
                    dur == tl || (dur >= ts_min && dur <= ts_max),
                    "sleep {dur} is neither TL nor a clamped TS"
                );
            }
        };

        for _ in 0..600 {
            match engine.step(&mut b) {
                EngineOp::Work(_) => {}
                EngineOp::Sleep(dur) => check_boundary(&b, Some(dur)),
                EngineOp::Wait(_) => check_boundary(&b, None),
            }
        }
        // Drive the current turn to its boundary so nothing is half done.
        let mut settled = false;
        for _ in 0..10_000 {
            if matches!(engine.step(&mut b), EngineOp::Sleep(_)) {
                settled = true;
                break;
            }
        }
        prop_assert!(settled, "engine failed to reach a sleep boundary");
        check_boundary(&b, None);

        // Accounting parity between the engine's policy and the backend.
        prop_assert_eq!(engine.policy().races_won, b.acquires);
        prop_assert_eq!(b.acquires, b.releases);

        // TS clamp over everything the controller handed out, plus the
        // final per-queue values.
        for q in 0..b.ctrl.n_queues() {
            b.ts_seen.push(b.ctrl.ts(q));
        }
        for &ts in &b.ts_seen {
            prop_assert!(
                ts >= ts_min && ts <= ts_max,
                "TS {ts} escaped [{ts_min}, {ts_max}]"
            );
        }
    }
}
