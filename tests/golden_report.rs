//! Golden-report regression tests: fixed-seed simulator runs of three
//! representative scenarios, snapshotting the key `RunReport` fields so
//! any protocol drift (engine, controller, queue model, traffic, latency
//! path) fails loudly instead of silently shifting results.
//!
//! Each scenario is run twice to prove byte-stability at a fixed seed,
//! then compared against the snapshot committed under `tests/golden/`.
//! To regenerate after an *intentional* protocol change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_report
//! ```
//!
//! The run-vs-run stability check holds on every platform. The committed
//! snapshots, however, are pinned to Linux (the CI platform): some
//! simulated values pass through libm (`ln`/`exp` in the Poisson and
//! sleep models), whose last-ulp rounding may differ across libm
//! implementations, which could shift an arrival across the horizon or a
//! digit across a rounding boundary with no actual protocol drift. The
//! snapshot comparison is therefore compiled only on Linux.

use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::NicProfile;
use metronome_repro::runtime::{run, RunReport, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;
use std::path::PathBuf;

/// Render the protocol-determined fields of a report as a stable snapshot.
///
/// Everything here is either an exact integer count or a deterministic
/// f64 derived from the seeded simulation; Rust's float formatting is
/// shortest-round-trip and platform-independent, so equal runs render
/// equal bytes.
fn render(r: &RunReport) -> String {
    let mut s = String::new();
    let mut line = |k: &str, v: String| {
        s.push_str(k);
        s.push_str(" = ");
        s.push_str(&v);
        s.push('\n');
    };
    line("name", r.name.clone());
    line("duration_ns", r.duration.as_nanos().to_string());
    line("offered", r.offered.to_string());
    line("processed", r.forwarded.to_string());
    line("dropped", r.dropped.to_string());
    line("loss_permille", format!("{:.6}", r.loss_permille()));
    line("throughput_mpps", format!("{:.6}", r.throughput_mpps));
    line("mean_rho", format!("{:.6}", r.mean_rho()));
    line("busy_try_fraction", format!("{:.6}", r.busy_try_fraction));
    line("total_wakes", r.total_wakes.to_string());
    line("mean_vacation_us", format!("{:.4}", r.mean_vacation_us()));
    line("mean_busy_us", format!("{:.4}", r.mean_busy_us()));
    match &r.latency_us {
        Some(b) => {
            line("latency_count", b.count.to_string());
            line("latency_min_us", format!("{:.4}", b.min));
            line("latency_q1_us", format!("{:.4}", b.q1));
            line("latency_median_us", format!("{:.4}", b.median));
            line("latency_q3_us", format!("{:.4}", b.q3));
            line("latency_max_us", format!("{:.4}", b.max));
        }
        None => line("latency", "none".into()),
    }
    for (qi, q) in r.queues.iter().enumerate() {
        line(
            &format!("queue{qi}"),
            format!(
                "drained={} dropped={} tries={} busy_tries={} rho={:.6}",
                q.drained, q.dropped, q.total_tries, q.busy_tries, q.rho
            ),
        );
    }
    line("series_points", r.series.len().to_string());
    s
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str, scenario: impl Fn() -> Scenario) {
    let first = render(&run(&scenario()));
    let second = render(&run(&scenario()));
    assert_eq!(
        first, second,
        "{name}: two runs at the same seed must be byte-identical"
    );
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &first).unwrap();
        return;
    }
    // Snapshots are pinned to the CI platform's libm (see module docs).
    #[cfg(target_os = "linux")]
    {
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
        assert_eq!(
            first, want,
            "{name}: RunReport drifted from its golden snapshot. If the \
             protocol change is intentional, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_report`."
        );
    }
    #[cfg(not(target_os = "linux"))]
    let _ = path;
}

#[test]
fn golden_cbr_l3fwd() {
    check("cbr_l3fwd", || {
        Scenario::metronome(
            "golden-cbr-l3fwd",
            MetronomeConfig::default(),
            TrafficSpec::CbrPps(5e6),
        )
        .with_duration(Nanos::from_millis(100))
        .with_latency()
        .with_seed(0x601D_0001)
    });
}

#[test]
fn golden_poisson_multiqueue() {
    check("poisson_multiqueue", || {
        Scenario::metronome(
            "golden-poisson-multiqueue",
            MetronomeConfig::multiqueue(5, 4),
            TrafficSpec::PoissonPps(8e6),
        )
        .with_nic(NicProfile::XL710)
        .with_duration(Nanos::from_millis(100))
        .with_latency()
        .with_seed(0x601D_0002)
    });
}

#[test]
fn golden_staircase_adaptation() {
    check("staircase_adaptation", || {
        Scenario::metronome(
            "golden-staircase",
            MetronomeConfig::default(),
            TrafficSpec::RampUpDown {
                peak_pps: 4e6,
                n_steps: 4,
                step: Nanos::from_millis(25),
            },
        )
        .with_duration(Nanos::from_millis(200))
        .with_latency()
        .with_series(Nanos::from_millis(50))
        .with_seed(0x601D_0003)
    });
}
