//! Threaded stress tests for the lock-free hot path: the SPSC/MPSC ring
//! primitives under real-thread boundary races, and the `SharedRing`
//! wake-hook contract (rung exactly once per accepting burst) on every
//! ring path.
//!
//! These run as part of the normal suite and again under the CI
//! threaded-stress job with `--test-threads=1`, where each test owns the
//! machine and the producer/consumer interleavings are at their most
//! adversarial on a single core (whole-timeslice stalls at arbitrary
//! points in the protocol).

use metronome_repro::dpdk::fastring::{MpscRing, SpscRing};
use metronome_repro::dpdk::{Mempool, RingPath, SharedRing};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const ALL_PATHS: [RingPath; 3] = [RingPath::Spsc, RingPath::Mpsc, RingPath::Locked];

/// A capacity-2 SPSC ring forces a full/empty boundary on nearly every
/// operation: the producer sees "apparently full" and the consumer
/// "apparently empty" constantly, so the cached-index refresh paths and
/// the acquire/release index handoff are exercised at maximum frequency.
#[test]
fn spsc_tiny_ring_boundary_stress_keeps_fifo() {
    const ITEMS: u64 = 200_000;
    let ring = Arc::new(SpscRing::<u64>::new(2));
    let producer = {
        let ring = Arc::clone(&ring);
        std::thread::spawn(move || {
            let mut next = 0u64;
            let mut batch: Vec<u64> = Vec::with_capacity(4);
            while next < ITEMS {
                // Alternate single pushes and small bursts so both the
                // one-slot and the batched publish paths cross the
                // boundary.
                if next.is_multiple_of(3) {
                    if ring.push(next).is_ok() {
                        next += 1;
                    } else {
                        std::thread::yield_now();
                    }
                } else {
                    batch.clear();
                    batch.extend(next..(next + 4).min(ITEMS));
                    let offered = batch.len() as u64;
                    let accepted = ring.push_burst(&mut batch) as u64;
                    next += accepted;
                    if accepted < offered {
                        std::thread::yield_now();
                    }
                }
            }
        })
    };
    let mut expected = 0u64;
    let mut out: Vec<u64> = Vec::with_capacity(4);
    while expected < ITEMS {
        if expected.is_multiple_of(2) {
            match ring.pop() {
                Some(v) => {
                    assert_eq!(v, expected, "FIFO order violated");
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        } else {
            let taken = ring.pop_burst(&mut out, 4);
            for v in out.drain(..) {
                assert_eq!(v, expected, "FIFO order violated in burst");
                expected += 1;
            }
            if taken == 0 {
                std::thread::yield_now();
            }
        }
    }
    producer.join().expect("producer panicked");
    assert!(
        ring.is_empty(),
        "items left behind after conservation count"
    );
}

/// Multi-producer stress on the MPSC ring: every item arrives exactly
/// once and each producer's items arrive in that producer's order (slot
/// claims are monotone per producer).
#[test]
fn mpsc_multi_producer_stress_conserves_and_orders() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 50_000;
    let ring = Arc::new(MpscRing::<u64>::new(8));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let tagged = p << 32 | i;
                    loop {
                        match ring.push(tagged) {
                            Ok(()) => break,
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                }
            })
        })
        .collect();
    let mut next_per_producer = vec![0u64; PRODUCERS as usize];
    let mut received = 0u64;
    let mut out: Vec<u64> = Vec::with_capacity(8);
    while received < PRODUCERS * PER_PRODUCER {
        let taken = ring.pop_burst(&mut out, 8);
        for tagged in out.drain(..) {
            let (p, i) = ((tagged >> 32) as usize, tagged & 0xFFFF_FFFF);
            assert_eq!(i, next_per_producer[p], "producer {p} items reordered");
            next_per_producer[p] += 1;
            received += 1;
        }
        if taken == 0 {
            std::thread::yield_now();
        }
    }
    for p in producers {
        p.join().expect("producer panicked");
    }
    assert!(ring.is_empty());
}

/// The wake-hook contract under producer/consumer stress, on every ring
/// path: the hook fires exactly once per burst that accepted at least one
/// frame — never per frame, never for an all-rejected burst — and the
/// tail-drop accounting reconciles (`offered == accepted + dropped`,
/// `accepted == consumed`).
#[test]
fn wake_hook_fires_once_per_accepting_burst_on_every_path() {
    const BURST: usize = 32;
    const TOTAL_BURSTS: u64 = 2_000;
    for path in ALL_PATHS {
        let wakes = Arc::new(AtomicU64::new(0));
        let mut ring = SharedRing::with_path(64, path);
        {
            let wakes = Arc::clone(&wakes);
            ring.set_wake_hook(Arc::new(move || {
                wakes.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let ring = Arc::new(ring);
        let pool = Mempool::new(1024, 64);
        let consumer = ring.consumer();
        let done = Arc::new(AtomicBool::new(false));

        let producer = {
            let ring = Arc::clone(&ring);
            let pool = pool.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut cache = pool.cache(BURST);
                let mut frames = Vec::with_capacity(BURST);
                let mut accepting_bursts = 0u64;
                for _ in 0..TOTAL_BURSTS {
                    cache.alloc_burst(BURST, &mut frames);
                    let accepted = ring.offer_burst(&mut frames);
                    if accepted > 0 {
                        accepting_bursts += 1;
                    } else {
                        std::thread::yield_now();
                    }
                    // Rejected frames stay in `frames`: recycle them.
                    cache.free_burst(frames.drain(..));
                }
                // Release-publish "no more offers": once the drainer reads
                // true, a subsequent empty pop really means drained.
                done.store(true, Ordering::Release);
                accepting_bursts
            })
        };
        let drainer = {
            let pool = pool.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut cache = pool.cache(BURST);
                let mut out = Vec::with_capacity(BURST);
                let mut consumed = 0u64;
                loop {
                    let n = consumer.pop_burst(&mut out, BURST);
                    consumed += n as u64;
                    cache.free_burst(out.drain(..));
                    if n == 0 {
                        if done.load(Ordering::Acquire) && consumer.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                consumed
            })
        };
        let accepting_bursts = producer.join().expect("producer panicked");
        let consumed = drainer.join().expect("drainer panicked");
        assert_eq!(
            ring.offered(),
            ring.accepted() + ring.dropped(),
            "{path:?}: offer accounting broken"
        );
        assert_eq!(ring.offered(), TOTAL_BURSTS * BURST as u64, "{path:?}");
        assert_eq!(
            ring.accepted(),
            consumed,
            "{path:?}: frames lost or duplicated"
        );
        assert_eq!(
            wakes.load(Ordering::Relaxed),
            accepting_bursts,
            "{path:?}: wake hook must fire exactly once per accepting burst"
        );
        assert_eq!(pool.in_use(), 0, "{path:?}: buffers leaked");
    }
}
