//! Property-based tests (proptest) on the core data structures and the
//! analytical model: invariants that must hold for *any* input, not just
//! the paper's operating points.

use metronome_repro::core::model;
use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::{Mempool, Ring, RxRingModel};
use metronome_repro::net::aes::Aes128;
use metronome_repro::net::checksum::{internet_checksum, verify};
use metronome_repro::net::headers::{build_udp_frame, l3fwd_rewrite, parse_frame, Mac};
use metronome_repro::net::lpm::Lpm;
use metronome_repro::net::toeplitz::Toeplitz;
use metronome_repro::net::{ExactMatch, FiveTuple};
use metronome_repro::runtime::{run, Scenario, TrafficSpec};
use metronome_repro::sim::stats::{Histogram, MeanVar};
use metronome_repro::sim::{EventQueue, Nanos};
use metronome_repro::traffic::{ArrivalProcess, Cbr, FaultKind, FaultPlan};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_tuple() -> impl Strategy<Value = FiveTuple> {
    (any::<u32>(), any::<u16>(), any::<u32>(), any::<u16>())
        .prop_map(|(s, sp, d, dp)| FiveTuple::udp(Ipv4Addr::from(s), sp, Ipv4Addr::from(d), dp))
}

proptest! {
    /// The counting ring model and the real mbuf ring agree on any
    /// offer/take schedule (the hybrid-DES core assumption).
    #[test]
    fn ring_model_matches_real_ring(ops in prop::collection::vec((0u64..48, 0u64..48), 1..200)) {
        let mut real = Ring::new(64);
        let mut model = RxRingModel::new(64);
        let mut out = Vec::new();
        for (offer, take) in ops {
            let mut accepted = 0;
            for _ in 0..offer {
                if real.enqueue(metronome_repro::dpdk::Mbuf::from_bytes(Default::default())) {
                    accepted += 1;
                }
            }
            prop_assert_eq!(model.offer(offer), accepted);
            out.clear();
            let took = real.dequeue_burst(take as usize, &mut out) as u64;
            prop_assert_eq!(model.take(take), took);
            prop_assert_eq!(model.occupancy(), real.len() as u64);
        }
    }

    /// Ring conservation: accepted = drained + still queued; offered =
    /// accepted + dropped.
    #[test]
    fn ring_conserves_packets(ops in prop::collection::vec((0u64..100, 0u64..100), 1..100)) {
        let mut m = RxRingModel::new(128);
        let mut offered = 0;
        for (o, t) in ops {
            offered += o;
            m.offer(o);
            m.take(t);
        }
        prop_assert_eq!(m.total_accepted() + m.total_dropped(), offered);
        prop_assert_eq!(m.total_accepted(), m.total_drained() + m.occupancy());
        prop_assert!(m.occupancy() <= m.capacity());
    }

    /// Mempool never double-hands a buffer and never exceeds population.
    #[test]
    fn mempool_bounded(ops in prop::collection::vec(any::<bool>(), 1..300)) {
        let pool = Mempool::new(16, 64);
        let mut held = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(m) = pool.alloc() {
                    held.push(m);
                }
            } else if let Some(m) = held.pop() {
                pool.free(m);
            }
            prop_assert_eq!(pool.in_use(), held.len());
            prop_assert!(pool.in_use() <= pool.population());
        }
    }

    /// Mempool conservation over arbitrary interleavings of every alloc
    /// and free flavor (single, template-fill, burst): the population is
    /// constant — every buffer is always either in the freelist or held
    /// by the caller — no leak, no double-hand-out, counters consistent,
    /// and every buffer handed out is clean no matter how dirty it was
    /// returned.
    #[test]
    fn mempool_interleavings_conserve(
        ops in prop::collection::vec((0u8..5, 1usize..8), 1..200)
    ) {
        let pool = Mempool::new(24, 64);
        let mut held: Vec<metronome_repro::dpdk::Mbuf> = Vec::new();
        let mut scratch = Vec::new();
        for (op, n) in ops {
            match op {
                0 => {
                    if let Some(m) = pool.alloc() {
                        prop_assert!(m.is_empty(), "recycled buffer not cleared");
                        held.push(m);
                    }
                }
                1 => {
                    if let Some(mut m) = pool.alloc_with(b"dirty payload") {
                        prop_assert_eq!(m.bytes(), &b"dirty payload"[..]);
                        // Dirty it further so recycling has to clean it.
                        m.bytes_mut()[0] = 0xFF;
                        held.push(m);
                    }
                }
                2 => {
                    let got = pool.alloc_burst(n, &mut scratch);
                    prop_assert_eq!(got, scratch.len());
                    for m in scratch.drain(..) {
                        prop_assert!(m.is_empty(), "burst buffer not cleared");
                        held.push(m);
                    }
                }
                3 => {
                    if let Some(m) = held.pop() {
                        pool.free(m);
                    }
                }
                _ => {
                    let k = n.min(held.len());
                    pool.free_burst(held.drain(..k));
                }
            }
            // Population constant: held + free always covers the pool.
            prop_assert_eq!(pool.in_use(), held.len());
            prop_assert_eq!(pool.available() + pool.in_use(), pool.population());
            // Counter audit: hand-outs minus returns = outstanding.
            let (allocs, frees) = pool.counters();
            prop_assert_eq!(allocs - frees, held.len() as u64);
            prop_assert!(pool.in_use_peak() >= pool.in_use());
        }
        // Returning everything restores the full freelist exactly.
        pool.free_burst(held.drain(..));
        prop_assert_eq!(pool.available(), pool.population());
        let (allocs, frees) = pool.counters();
        prop_assert_eq!(allocs, frees);
    }

    /// Mempool conservation with per-worker caches in the loop: arbitrary
    /// interleavings of cached and direct alloc/free (single and burst,
    /// forcing spills and refills with small cache sizes), with buffers
    /// freed through *any* handle regardless of where they were allocated.
    /// The exactness contract: `available() + in_use() == population`
    /// after every op (cached buffers count as available, like
    /// `rte_mempool_avail_count`), the hand-out counters reconcile, and
    /// the in-use peak never over-reads the population.
    #[test]
    fn mempool_cached_interleavings_conserve(
        ops in prop::collection::vec((0u8..3, 0u8..5, 1usize..8), 1..200)
    ) {
        let pool = Mempool::new(32, 64);
        // Handle 0 is the bare pool; 1 and 2 are worker caches small
        // enough (2, 3) that bursts of up to 7 regularly bypass, refill,
        // and spill.
        let mut caches = vec![pool.cache(2), pool.cache(3)];
        let mut held: Vec<metronome_repro::dpdk::Mbuf> = Vec::new();
        let mut scratch = Vec::new();
        for (which, op, n) in ops {
            let cache = which.checked_sub(1).map(|i| &mut caches[i as usize]);
            match op {
                0 => {
                    let got = match cache {
                        Some(c) => c.alloc(),
                        None => pool.alloc(),
                    };
                    if let Some(m) = got {
                        prop_assert!(m.is_empty(), "recycled buffer not cleared");
                        held.push(m);
                    }
                }
                1 => {
                    let got = match cache {
                        Some(c) => c.alloc_burst(n, &mut scratch),
                        None => pool.alloc_burst(n, &mut scratch),
                    };
                    prop_assert_eq!(got, scratch.len());
                    held.append(&mut scratch);
                }
                2 => {
                    if let Some(m) = held.pop() {
                        match cache {
                            Some(c) => c.free(m),
                            None => pool.free(m),
                        }
                    }
                }
                3 => {
                    let k = n.min(held.len());
                    match cache {
                        Some(c) => c.free_burst(held.drain(..k)),
                        None => pool.free_burst(held.drain(..k)),
                    }
                }
                _ => {
                    if let Some(c) = cache {
                        c.flush();
                        prop_assert_eq!(c.cached(), 0);
                    }
                }
            }
            // Exactness after every op, caches included: every buffer is
            // in the freelist, in a cache, or held — nowhere else.
            prop_assert_eq!(pool.in_use(), held.len());
            prop_assert_eq!(pool.available() + pool.in_use(), pool.population());
            prop_assert_eq!(
                pool.cached() as u64,
                caches.iter().map(|c| c.cached() as u64).sum::<u64>()
            );
            let (allocs, frees) = pool.counters();
            prop_assert_eq!(allocs - frees, held.len() as u64);
            prop_assert!(pool.in_use_peak() >= pool.in_use());
            prop_assert!(pool.in_use_peak() <= pool.population());
        }
        // Quiescence: drop the caches (spilling their stacks), return
        // everything — the freelist is whole and allocs == frees.
        drop(caches);
        prop_assert_eq!(pool.cached(), 0);
        pool.free_burst(held.drain(..));
        prop_assert_eq!(pool.available(), pool.population());
        let (allocs, frees) = pool.counters();
        prop_assert_eq!(allocs, frees);
    }

    /// LPM agrees with a naive longest-prefix oracle on random tables.
    #[test]
    fn lpm_matches_oracle(
        routes in prop::collection::vec((any::<u32>(), 1u8..=32, any::<u16>()), 0..40),
        probes in prop::collection::vec(any::<u32>(), 1..60,)
    ) {
        let mask = |d: u8| if d == 0 { 0 } else { u32::MAX << (32 - d as u32) };
        let mut lpm = Lpm::with_first_stage_bits(16, 128);
        let mut table: Vec<(u32, u8, u16)> = Vec::new();
        for (p, d, h) in routes {
            let p = p & mask(d);
            if lpm.add(Ipv4Addr::from(p), d, h).is_ok() {
                table.retain(|&(tp, td, _)| !(tp == p && td == d));
                table.push((p, d, h));
            }
        }
        for probe in probes {
            let oracle = table
                .iter()
                .filter(|&&(p, d, _)| probe & mask(d) == p)
                .max_by_key(|&&(_, d, _)| d)
                .map(|&(_, _, h)| h);
            prop_assert_eq!(lpm.lookup(Ipv4Addr::from(probe)), oracle);
        }
    }

    /// Exact-match holds what it stored, for any flow set.
    #[test]
    fn exact_match_round_trip(tuples in prop::collection::vec(arb_tuple(), 1..200)) {
        let mut em = ExactMatch::with_capacity(1024);
        let mut stored = Vec::new();
        for (i, t) in tuples.iter().enumerate() {
            if em.insert(*t, i).is_ok() {
                stored.retain(|&(s, _): &(FiveTuple, usize)| s != *t);
                stored.push((*t, i));
            }
        }
        for (t, v) in stored {
            prop_assert_eq!(em.get(&t), Some(&v));
        }
    }

    /// Toeplitz is deterministic and queue mapping stays in range.
    #[test]
    fn toeplitz_stable_and_bounded(t in arb_tuple(), n in 1usize..64) {
        let tz = Toeplitz::default();
        let h1 = tz.hash(&t.rss_input());
        let h2 = tz.hash(&t.rss_input());
        prop_assert_eq!(h1, h2);
        prop_assert!(tz.queue_for(&t.rss_input(), n) < n);
    }

    /// AES-CBC decrypt(encrypt(x)) == x for any whole-block payload & key.
    #[test]
    fn aes_cbc_round_trip(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        blocks in 1usize..8,
        seed in any::<u64>()
    ) {
        let aes = Aes128::new(&key);
        let mut data: Vec<u8> = (0..blocks * 16)
            .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 32) as u8)
            .collect();
        let original = data.clone();
        aes.cbc_encrypt(&iv, &mut data);
        prop_assert_ne!(&data, &original);
        aes.cbc_decrypt(&iv, &mut data);
        prop_assert_eq!(data, original);
    }

    /// Built frames always parse back to their tuple, and the l3fwd
    /// rewrite preserves checksum validity.
    #[test]
    fn frame_build_parse_rewrite(t in arb_tuple(), payload_len in 0usize..64) {
        let payload = vec![0x5A; payload_len];
        let mut frame = build_udp_frame(Mac::local(1), Mac::local(2), &t, &payload, 0);
        let parsed = parse_frame(&frame).expect("own frames must parse");
        prop_assert_eq!(parsed.tuple, t);
        if l3fwd_rewrite(&mut frame, Mac::local(3), Mac::local(4)) {
            let re = parse_frame(&frame).expect("rewrite must keep checksum valid");
            prop_assert_eq!(re.ttl, 63);
        }
    }

    /// Internet checksum: inserting the computed checksum verifies.
    #[test]
    fn checksum_self_verifies(data in prop::collection::vec(any::<u8>(), 4..128)) {
        let mut region = data.clone();
        region[2] = 0;
        region[3] = 0;
        let c = internet_checksum(&region);
        region[2] = (c >> 8) as u8;
        region[3] = (c & 0xFF) as u8;
        prop_assert!(verify(&region));
    }

    /// Event queue delivers every event exactly once, in time order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), i);
        }
        let mut seen = vec![false; times.len()];
        let mut last = Nanos::ZERO;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            prop_assert!(!seen[i], "duplicate delivery");
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// CBR drains are exact under arbitrary chunking: total equals the
    /// closed-form count regardless of how the timeline is sliced.
    #[test]
    fn cbr_chunking_invariant(
        pps in 1_000.0f64..20_000_000.0,
        cuts in prop::collection::vec(1u64..500_000, 1..50)
    ) {
        let mut one = Cbr::new(pps, Nanos::ZERO);
        let mut many = Cbr::new(pps, Nanos::ZERO);
        let mut t = Nanos::ZERO;
        let mut total = 0;
        for c in cuts {
            t += Nanos(c);
            total += many.drain(t, None);
        }
        prop_assert_eq!(one.drain(t, None), total);
    }

    /// The TS rule is monotone in rho and bounded in [V̄, M·V̄].
    #[test]
    fn ts_rule_bounds(m in 1usize..12, rho in 0.0f64..1.0, v in 1e-6f64..1e-3) {
        let ts = model::ts_rule(m, rho, v);
        prop_assert!(ts <= m as f64 * v * (1.0 + 1e-9));
        prop_assert!(ts >= v * (1.0 - 1e-9));
        let ts_higher = model::ts_rule(m, (rho + 0.1).min(1.0), v);
        prop_assert!(ts_higher <= ts + 1e-15);
    }

    /// eq. (13) inverts eq. (10): setting TS by the rule yields E[V] = V̄.
    #[test]
    fn ts_rule_inverts_vacation_mean(m in 1usize..10, rho in 0.0f64..0.999) {
        let v = 10e-6;
        let ts = model::ts_rule(m, rho, v);
        let ev = model::vacation_mean_approx(ts, m, 1.0 - rho);
        prop_assert!((ev - v).abs() / v < 1e-6, "E[V] = {ev}");
    }

    /// Vacation CDFs are genuine CDFs: monotone, 0 at 0⁻, 1 at TS.
    #[test]
    fn vacation_cdf_is_cdf(m in 2usize..10, frac in 0.01f64..1.0) {
        let (ts, tl) = (10e-6, 500e-6);
        let x = ts * frac;
        let c = model::vacation_cdf_high_load(x, ts, tl, m);
        prop_assert!((0.0..=1.0).contains(&c));
        let c2 = model::vacation_cdf_high_load((x + ts * 0.01).min(ts), ts, tl, m);
        prop_assert!(c2 + 1e-12 >= c);
        prop_assert_eq!(model::vacation_cdf_high_load(ts, ts, tl, m), 1.0);
    }

    /// Welford statistics match two-pass results on arbitrary data.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut mv = MeanVar::new();
        for &x in &xs {
            mv.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((mv.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((mv.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    /// Chaos: *any* interleaving of fault events — overlapping spikes,
    /// stalls, starvation windows, and jitter bursts at arbitrary offsets
    /// — leaves the sim backend's conservation identity exactly intact
    /// (`offered == processed + dropped`, per-window columns telescoping
    /// to the aggregates) and lets nothing non-finite into the report.
    #[test]
    fn chaos_fault_interleavings_conserve(
        events in prop::collection::vec(
            (0u8..4, 0.0f64..0.9, 0.01f64..0.5, 0.0f64..1.0),
            1..8,
        ),
        kpps in 100u64..4_000,
        seed in any::<u64>(),
    ) {
        let dur = Nanos::from_millis(40);
        let mut plan = FaultPlan::new();
        for (kind, at_frac, dur_frac, param) in events {
            let at = dur.scaled_f64(at_frac);
            let window = dur.scaled_f64(dur_frac);
            let kind = match kind {
                0 => FaultKind::RateSpike { factor: param * 4.0 },
                1 => FaultKind::QueueStall,
                2 => FaultKind::PoolStarve { fraction: param },
                _ => FaultKind::JitterBurst {
                    jitter: Nanos::from_micros(1 + (param * 50.0) as u64),
                    drop_prob: param,
                },
            };
            plan.push(at, window, kind);
        }
        let sc = Scenario::metronome(
            "chaos-plan",
            MetronomeConfig::default(),
            TrafficSpec::CbrPps(kpps as f64 * 1e3),
        )
        .with_duration(dur)
        .with_series(dur / 8)
        .with_faults(plan)
        .with_seed(seed);
        let r = run(&sc);

        // Exact conservation for every generated plan: whatever the
        // faults did, every offered packet is processed, dropped (by
        // cause), or still sitting in a ring at the horizon — the final
        // window's occupancy gauge, sampled at the same sim instant.
        let ts = r.timeseries.as_ref().expect("series requested");
        let in_flight: u64 = ts
            .windows
            .last()
            .map_or(0, |w| w.occupancy.iter().sum());
        prop_assert_eq!(r.offered, r.forwarded + r.dropped + in_flight);
        prop_assert_eq!(
            r.dropped,
            r.dropped_ring + r.dropped_pool + r.dropped_fault
        );
        prop_assert_eq!(ts.column_sum(|w| w.retrieved), r.forwarded);
        prop_assert_eq!(ts.column_sum(|w| w.dropped_ring), r.dropped_ring);
        prop_assert_eq!(ts.column_sum(|w| w.dropped_pool), r.dropped_pool);
        prop_assert_eq!(ts.column_sum(|w| w.dropped_fault), r.dropped_fault);

        // No NaN/inf anywhere a consumer can see it.
        prop_assert!(r.loss.is_finite());
        prop_assert!(r.throughput_mpps.is_finite());
        prop_assert!(ts.windows.iter().all(|w| w.loss().is_finite()));
        let json = r.to_json();
        prop_assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    /// Histogram quantiles stay within the recorded min/max and the count
    /// is exact.
    #[test]
    fn histogram_quantile_bounds(xs in prop::collection::vec(0u64..1_000_000_000, 1..500)) {
        let mut h = Histogram::latency();
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        let min = *xs.iter().min().unwrap();
        let max = *xs.iter().max().unwrap();
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= min && v <= max, "q{q} = {v} outside [{min}, {max}]");
        }
    }
}
