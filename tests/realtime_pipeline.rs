//! End-to-end tests of the realtime scenario runner: load generator →
//! Toeplitz RSS → mbuf rings → Metronome workers → functional apps →
//! latency histograms → `RunReport`.
//!
//! These tests spawn real spinning threads; they serialize on the shared
//! guard and run single-threaded in CI's realtime job. All assertions are
//! correctness-based (conservation, counters, report shape) — never
//! timing-based — so they hold on loaded 1-core machines.

mod common;

use common::serial;
use metronome_repro::apps::processor::{PacketProcessor, Verdict};
use metronome_repro::apps::L3Fwd;
use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::Mbuf;
use metronome_repro::runtime::{
    run_realtime, run_realtime_with, try_run_realtime, AppProfile, RealtimeError, RingPath,
    RunReport, Scenario, TrafficSpec,
};
use metronome_repro::sim::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wraps a processor, counting verdicts into shared atomics so a test can
/// observe the application layer from outside the pipeline.
struct Counting<P> {
    inner: P,
    forwarded: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl<P: PacketProcessor> PacketProcessor for Counting<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cycles_per_packet(&self) -> u64 {
        self.inner.cycles_per_packet()
    }

    fn process(&mut self, mbuf: &mut Mbuf) -> Verdict {
        let v = self.inner.process(mbuf);
        match v {
            Verdict::Forward => self.forwarded.fetch_add(1, Ordering::Relaxed),
            Verdict::Drop => self.dropped.fetch_add(1, Ordering::Relaxed),
        };
        v
    }
}

/// A deliberately slow application: spins `per_packet` per frame, making
/// the drain capacity precisely controllable for overload tests.
struct SlowApp {
    per_packet: Duration,
}

impl PacketProcessor for SlowApp {
    fn name(&self) -> &'static str {
        "slow-app"
    }

    fn cycles_per_packet(&self) -> u64 {
        1
    }

    fn process(&mut self, _mbuf: &mut Mbuf) -> Verdict {
        let t0 = Instant::now();
        while t0.elapsed() < self.per_packet {
            std::hint::spin_loop();
        }
        Verdict::Forward
    }
}

/// The acceptance scenario: an l3fwd CBR run end-to-end on real threads.
#[test]
fn l3fwd_cbr_end_to_end() {
    let _guard = serial();
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome("rt-l3fwd-cbr", cfg, TrafficSpec::CbrPps(40_000.0))
        .with_duration(Nanos::from_millis(200))
        .with_latency()
        .with_seed(0xE2E);

    let app_forwarded = Arc::new(AtomicU64::new(0));
    let app_dropped = Arc::new(AtomicU64::new(0));
    let r = run_realtime_with(&sc, &|_q| {
        Box::new(Counting {
            inner: L3Fwd::with_sample_routes(4),
            forwarded: Arc::clone(&app_forwarded),
            dropped: Arc::clone(&app_dropped),
        })
    });

    // Nonzero traffic actually flowed (CBR 40 kpps × 200 ms = 8000 frames;
    // sub-line-rate CBR arrives as 32-packet generator trains, so the
    // window edge can round to a train boundary).
    assert!(r.forwarded > 0, "no packets processed");
    assert!(
        (r.offered as i64 - 8_000).unsigned_abs() <= 32,
        "CBR schedule drifted: offered {}",
        r.offered
    );
    // Conservation: everything offered was processed or dropped.
    assert_eq!(r.offered, r.forwarded + r.dropped, "packets leaked");
    // The functional l3fwd really forwarded the frames: routable flows,
    // valid checksums, TTL > 1 — none may be dropped by the application.
    assert_eq!(
        app_forwarded.load(Ordering::Relaxed),
        r.forwarded,
        "application did not forward every retrieved frame"
    );
    assert_eq!(app_dropped.load(Ordering::Relaxed), 0);
    // Latency percentiles are populated and ordered.
    let lat = r.latency_us.expect("latency must be measured");
    assert_eq!(lat.count as u64, r.forwarded);
    assert!(lat.min > 0.0, "zero latency is implausible");
    assert!(lat.min <= lat.q1 && lat.q1 <= lat.median);
    assert!(lat.median <= lat.q3 && lat.q3 <= lat.max);
    // Report shape matches the sim's columns.
    assert_eq!(r.queues.len(), 1);
    assert_eq!(r.queues[0].drained, r.forwarded);
    assert!(r.total_wakes > 0);
    assert!(r.queues[0].total_tries > 0);
}

/// RSS spreads a multi-flow CBR stream over both queues and the per-queue
/// accounting adds up to the aggregate.
#[test]
fn multiqueue_rss_spreads_and_accounts() {
    let _guard = serial();
    let cfg = MetronomeConfig::multiqueue(2, 2);
    let sc = Scenario::metronome("rt-multiqueue", cfg, TrafficSpec::CbrPps(50_000.0))
        .with_duration(Nanos::from_millis(200))
        .with_latency()
        .with_seed(0x2525);
    let r = run_realtime(&sc);

    assert_eq!(r.queues.len(), 2);
    assert_eq!(r.offered, r.forwarded + r.dropped);
    for (q, qr) in r.queues.iter().enumerate() {
        assert!(qr.drained > 0, "queue {q} starved — RSS did not spread");
    }
    let per_queue: u64 = r.queues.iter().map(|q| q.drained + q.dropped).sum();
    assert_eq!(per_queue, r.offered, "per-queue counts drifted from total");
}

/// Overload: offered rate far above the app's drain capacity on a tiny
/// ring. Tail-drops must be counted, conservation must stay exact, and no
/// wakeup may be lost (the run terminates with the rings empty).
#[test]
fn ring_overflow_under_overload_conserves_packets() {
    let _guard = serial();
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        ..MetronomeConfig::default()
    };
    // Capacity ≈ 1/30µs ≈ 33 kpps; offered 150 kpps on a 32-slot ring.
    let sc = Scenario::metronome("rt-overload", cfg, TrafficSpec::CbrPps(150_000.0))
        .with_duration(Nanos::from_millis(150))
        .with_ring(32)
        .with_seed(0x0F10)
        .with_latency();
    let r = run_realtime_with(&sc, &|_q| {
        Box::new(SlowApp {
            per_packet: Duration::from_micros(30),
        })
    });

    assert!(
        (r.offered as i64 - 22_500).unsigned_abs() <= 32,
        "CBR schedule drifted: offered {}",
        r.offered
    );
    assert!(r.dropped > 0, "overload must tail-drop");
    assert!(r.forwarded > 0, "some packets must still flow");
    // The conservation identity — no double count, no loss of accounting.
    assert_eq!(r.offered, r.forwarded + r.dropped);
    assert_eq!(
        r.queues.iter().map(|q| q.dropped).sum::<u64>(),
        r.dropped,
        "per-queue drops drifted from the total"
    );
    // Drop causes partition the total.
    assert_eq!(r.dropped, r.dropped_ring + r.dropped_pool);
    assert!(r.loss > 0.0 && r.loss < 1.0);
}

/// One equal-offered-load scenario per retrieval discipline (40 kpps of
/// l3fwd CBR for 200 ms on one queue).
fn discipline_scenarios() -> Vec<Scenario> {
    let traffic = TrafficSpec::CbrPps(40_000.0);
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        ..MetronomeConfig::default()
    };
    vec![
        Scenario::metronome("rt-disc-metronome", cfg, traffic.clone()),
        Scenario::static_dpdk("rt-disc-busy-poll", 1, traffic.clone()),
        Scenario::xdp("rt-disc-interrupt", 1, traffic.clone()),
        Scenario::const_sleep("rt-disc-const-sleep", 1, Nanos::from_micros(100), traffic),
    ]
    .into_iter()
    .map(|sc| sc.with_duration(Nanos::from_millis(200)).with_seed(0xD15C))
    .collect()
}

/// Discipline parity: every retrieval discipline executes the same
/// scenario on real threads with exact packet conservation and non-zero
/// throughput — the realtime runner no longer rejects the baselines.
#[test]
fn all_disciplines_conserve_and_forward() {
    let _guard = serial();
    for sc in discipline_scenarios() {
        let r: RunReport = run_realtime(&sc);
        assert!(r.forwarded > 0, "{}: no packets processed", r.name);
        assert_eq!(
            r.offered,
            r.forwarded + r.dropped,
            "{}: packets leaked",
            r.name
        );
        assert!(
            (r.offered as i64 - 8_000).unsigned_abs() <= 32,
            "{}: CBR schedule drifted: offered {}",
            r.name,
            r.offered
        );
        // Per-queue accounting still adds up for every discipline.
        let per_queue: u64 = r.queues.iter().map(|q| q.drained + q.dropped).sum();
        assert_eq!(per_queue, r.offered, "{}: per-queue drift", r.name);
        // At 40 kpps with a 100 µs period / moderation window, no
        // discipline should drop on a default 512-slot ring.
        assert_eq!(r.dropped, 0, "{}: unexpected drops", r.name);
    }
}

/// Every ring synchronization path carries the same scenario end to end:
/// the default SPSC fast path, the MPSC compare-exchange path, and the
/// mutex-serialized reference path all conserve exactly and lose nothing
/// at this load. One case per [`RingPath`].
#[test]
fn every_ring_path_conserves_end_to_end() {
    let _guard = serial();
    for path in [RingPath::Spsc, RingPath::Mpsc, RingPath::Locked] {
        let cfg = MetronomeConfig::multiqueue(2, 2);
        let sc = Scenario::metronome(
            format!("rt-ring-{}", path.label()),
            cfg,
            TrafficSpec::CbrPps(40_000.0),
        )
        .with_duration(Nanos::from_millis(200))
        .with_seed(0x4147)
        .with_ring_path(path);
        let r = run_realtime(&sc);
        assert!(r.forwarded > 0, "{}: no packets processed", r.name);
        assert_eq!(r.offered, r.forwarded + r.dropped, "{}: leaked", r.name);
        assert_eq!(r.dropped, 0, "{}: unexpected drops at 40 kpps", r.name);
        let per_queue: u64 = r.queues.iter().map(|q| q.drained + q.dropped).sum();
        assert_eq!(per_queue, r.offered, "{}: per-queue drift", r.name);
    }
}

/// The Fig. 10 CPU ordering on real threads: a busy poller burns its core
/// (duty cycle ≈ 100% per queue) while Metronome's sleep&wake scheme
/// spends strictly less at the same offered load.
#[test]
fn busy_poll_burns_the_core_metronome_does_not() {
    let _guard = serial();
    let scenarios = discipline_scenarios();
    let metronome = run_realtime(&scenarios[0]);
    let busy_poll = run_realtime(&scenarios[1]);
    // One pinned spinning worker: the whole wall clock is busy time.
    assert!(
        busy_poll.cpu_total_pct > 85.0,
        "busy poller should burn ~a full core, got {:.1}%",
        busy_poll.cpu_total_pct
    );
    assert!(
        busy_poll.cpu_total_pct < 115.0,
        "one busy poller cannot exceed one core: {:.1}%",
        busy_poll.cpu_total_pct
    );
    // Metronome at 40 kpps sleeps most of the time.
    assert!(
        metronome.cpu_total_pct < 0.7 * busy_poll.cpu_total_pct,
        "metronome {:.1}% should be well under busy-poll {:.1}%",
        metronome.cpu_total_pct,
        busy_poll.cpu_total_pct
    );
}

/// The interrupt-driven discipline parks on its doorbell: with no traffic
/// at all its CPU is ≈ 0 (the XDP idle bar of Fig. 10).
#[test]
fn interrupt_discipline_idles_at_zero_cpu() {
    let _guard = serial();
    let sc = Scenario::xdp("rt-interrupt-idle", 1, TrafficSpec::Silent)
        .with_duration(Nanos::from_millis(200))
        .with_seed(0x1D1E);
    let r = run_realtime(&sc);
    assert_eq!(r.offered, 0);
    assert_eq!(r.forwarded, 0);
    assert!(
        r.cpu_total_pct < 5.0,
        "parked interrupt worker should be ~free, got {:.2}%",
        r.cpu_total_pct
    );
}

/// `Idle` runs the pipeline with no consumers: every accepted frame is
/// stranded and counted as a ring drop, and conservation still holds.
#[test]
fn idle_system_strands_everything() {
    let _guard = serial();
    let mut sc = Scenario::idle("rt-idle");
    sc.traffic = TrafficSpec::CbrPps(40_000.0);
    let r = run_realtime(&sc.with_duration(Nanos::from_millis(100)).with_seed(0x1D7E));
    assert!(r.offered > 0);
    assert_eq!(r.forwarded, 0, "idle system must process nothing");
    assert_eq!(r.offered, r.dropped, "everything offered must be dropped");
    assert_eq!(r.cpu_total_pct, 0.0);
    assert_eq!(r.total_wakes, 0);
}

/// A scenario the runner cannot execute comes back as a typed error, not
/// a panic: unknown functional processors and queue-count mismatches.
#[test]
fn rejected_scenarios_return_typed_errors() {
    let _guard = serial();
    // Cost-model-only app profile: fine in the simulator, no functional
    // processor on real threads.
    let bogus = AppProfile {
        name: "cost-model-only",
        cycles_per_packet: 100,
        cycles_per_burst: 50,
    };
    let sc = Scenario::metronome(
        "rt-no-processor",
        MetronomeConfig::default(),
        TrafficSpec::Silent,
    )
    .with_app(bogus)
    .with_duration(Nanos::from_millis(10));
    match try_run_realtime(&sc) {
        Err(RealtimeError::NoProcessor { app }) => assert_eq!(app, "cost-model-only"),
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("scenario with no functional processor must be rejected"),
    }

    // Queue-count mismatch between the Metronome config and the scenario.
    let mut sc = Scenario::metronome(
        "rt-queue-mismatch",
        MetronomeConfig::multiqueue(3, 2),
        TrafficSpec::Silent,
    )
    .with_duration(Nanos::from_millis(10));
    sc.n_queues = 1;
    match try_run_realtime(&sc) {
        Err(RealtimeError::QueueMismatch { config, scenario }) => {
            assert_eq!((config, scenario), (2, 1));
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("queue-count mismatch must be rejected"),
    }
}

/// Pool exhaustion is its own drop cause: a big ring with a starved mbuf
/// pool loses packets at allocation, not at the descriptors — and the
/// report must say so (ring tail-drop vs pool exhaustion), with the pool
/// counters exposing the starvation.
#[test]
fn pool_exhaustion_is_a_distinct_drop_cause() {
    let _guard = serial();
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 1,
        ..MetronomeConfig::default()
    };
    // Ring far larger than the pool: descriptors are never the bottleneck,
    // so every loss must be charged to the pool. The slow app holds each
    // buffer ~30 µs, capping pool turnover at ~33 kpps × 24 buffers.
    let sc = Scenario::metronome("rt-pool-starved", cfg, TrafficSpec::CbrPps(150_000.0))
        .with_duration(Nanos::from_millis(150))
        .with_ring(4096)
        .with_mbuf_pool(24)
        .with_seed(0x9001);
    let r = run_realtime_with(&sc, &|_q| {
        Box::new(SlowApp {
            per_packet: Duration::from_micros(30),
        })
    });

    assert!(r.dropped_pool > 0, "starved pool must drop at allocation");
    assert_eq!(r.offered, r.forwarded + r.dropped, "conservation");
    assert_eq!(r.dropped, r.dropped_ring + r.dropped_pool);
    assert_eq!(
        r.queues.iter().map(|q| q.dropped_pool).sum::<u64>(),
        r.dropped_pool,
        "per-queue pool drops drifted from the total"
    );
    let pool = r.mempool.expect("realtime run reports pool stats");
    assert!(pool.alloc_failures >= r.dropped_pool);
    assert_eq!(pool.population, 24);
    // An alloc failure means some allocation found the freelist empty —
    // and since occupancy accounting shares the freelist's critical
    // section, the peak must have registered the full population (and can
    // never exceed it).
    assert_eq!(pool.in_use_peak, 24, "starved pool must hit its ceiling");
    assert_eq!(pool.allocs, pool.frees, "every buffer must come home");
}
