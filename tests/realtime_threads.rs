//! Integration tests of the real-`std::thread` Metronome runtime: the
//! library surface a user adopts (paper Listing 2 on real atomics and a
//! spin-assisted precise sleeper).

mod common;

use common::{push_all, serial};
use crossbeam::queue::ArrayQueue;
use metronome_repro::core::{config::MetronomeConfig, realtime::Metronome};
use metronome_repro::sim::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn multiqueue_processes_exactly_once() {
    let _guard = serial();
    let cfg = MetronomeConfig {
        m_threads: 4,
        n_queues: 3,
        ..MetronomeConfig::default()
    };
    let queues: Vec<_> = (0..3)
        .map(|_| Arc::new(ArrayQueue::<u64>::new(8192)))
        .collect();
    let count = Arc::new(AtomicU64::new(0));
    let xor = Arc::new(AtomicU64::new(0));
    let m = {
        let count = Arc::clone(&count);
        let xor = Arc::clone(&xor);
        Metronome::start(cfg, queues.clone(), move |_q, burst: &mut Vec<u64>| {
            for item in burst.drain(..) {
                count.fetch_add(1, Ordering::Relaxed);
                xor.fetch_xor(item, Ordering::Relaxed);
            }
        })
    };
    let n = 30_000u64;
    let mut expected_xor = 0u64;
    for i in 0..n {
        expected_xor ^= i;
    }
    for (qi, q) in queues.iter().enumerate() {
        push_all(q, (0..n).filter(|i| (i % 3) as usize == qi));
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    while count.load(Ordering::Relaxed) < n && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = m.stop();
    assert_eq!(count.load(Ordering::Relaxed), n, "lost items");
    assert_eq!(
        xor.load(Ordering::Relaxed),
        expected_xor,
        "duplicated items"
    );
    assert_eq!(stats.total_processed(), n);
    // All three queues saw traffic.
    for q in 0..3 {
        assert!(stats.processed[q] > 0, "queue {q} starved");
    }
}

#[test]
fn rho_tracks_offered_load_up_and_down() {
    let _guard = serial();
    // The protocol is timescale-free: to make the test robust on small,
    // shared machines (this host has 2 cores; OS timeslices are ~ms) we
    // scale every knob up ~30x — V̄ = 300 µs, TL = 10 ms, ~20 µs per item —
    // so renewal cycles last ~1 ms and scheduler noise is second-order.
    // M = 2 workers + 1 paced producer fit the available cores.
    let cfg = MetronomeConfig {
        m_threads: 2,
        v_target: Nanos::from_micros(300),
        t_long: Nanos::from_millis(10),
        ..MetronomeConfig::default()
    };
    let queues = vec![Arc::new(ArrayQueue::<u64>::new(8192))];
    let m = Metronome::start(cfg, queues.clone(), |_q, burst: &mut Vec<u64>| {
        for item in burst.drain(..) {
            let t = Instant::now();
            while t.elapsed() < Duration::from_micros(20) {
                std::hint::spin_loop();
            }
            std::hint::black_box(item);
        }
    });
    let sleeper = metronome_repro::core::PreciseSleeper::default();

    // Phase 1: ~25 kpps against ~50 kpps of capacity (ρ ≈ 0.5) for 1 s.
    let t0 = Instant::now();
    let mut rho_busy = 0.0f64;
    let mut ts_busy = Nanos::MAX;
    let mut batches = 0u64;
    while t0.elapsed() < Duration::from_secs(1) {
        push_all(&queues[0], 0..8);
        batches += 1;
        if batches.is_multiple_of(100) {
            rho_busy = rho_busy.max(m.rho(0));
            ts_busy = ts_busy.min(m.ts(0));
        }
        sleeper.sleep(Duration::from_micros(320));
    }

    // Phase 2: silence — rho must decay and TS relax back toward M·V̄.
    std::thread::sleep(Duration::from_secs(1));
    let rho_idle = m.rho(0);
    let ts_idle = m.ts(0);
    m.stop();

    assert!(
        rho_busy > 0.15,
        "rho too low under sustained load: {rho_busy}"
    );
    assert!(
        rho_idle < rho_busy / 2.0,
        "rho did not decay: busy {rho_busy} vs idle {rho_idle}"
    );
    assert!(
        ts_busy < Nanos::from_micros(600),
        "TS never compressed: {ts_busy}"
    );
    assert!(
        ts_idle > ts_busy,
        "TS did not relax at idle: {ts_idle} vs {ts_busy}"
    );
    assert!(
        ts_idle <= Nanos::from_micros(601),
        "TS above M·V̄: {ts_idle}"
    );
}

#[test]
fn stop_is_clean_under_load() {
    let _guard = serial();
    // Stopping mid-traffic must join all workers without panicking and
    // report consistent counters.
    let cfg = MetronomeConfig {
        m_threads: 3,
        n_queues: 2,
        ..MetronomeConfig::default()
    };
    let queues: Vec<_> = (0..2)
        .map(|_| Arc::new(ArrayQueue::<u64>::new(1024)))
        .collect();
    let m = Metronome::start(cfg, queues.clone(), |_q, _i| {});
    for q in &queues {
        push_all(q, 0..512);
    }
    std::thread::sleep(Duration::from_millis(100));
    let stats = m.stop();
    assert_eq!(stats.wakes.len(), 3);
    assert!(stats.wakes.iter().all(|&w| w > 0), "a worker never woke");
    assert!(stats.total_processed() <= 1024);
}
