//! Property tests of the sharded ingest path: for *any* combination of
//! producer shard count, queue count, ring path, and seed, sharded
//! generation plus scatter-gather queue dispatch must preserve per-flow
//! order (flow → shard is a pure flow property, so every flow has
//! exactly one producer) and exact packet conservation
//! (`offered == forwarded + dropped`, every mempool buffer home).
//!
//! These runs spawn real generator and worker threads; they serialize on
//! the shared guard and keep durations short so 64 proptest cases stay
//! tractable on a loaded 1-core CI machine.

mod common;

use common::serial;
use metronome_repro::apps::processor::{PacketProcessor, Verdict};
use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::Mbuf;
use metronome_repro::runtime::{run_realtime_with, RingPath, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Observes per-flow arrival order from inside the application layer:
/// RSS pins a flow to one queue, so each queue-local probe sees every
/// packet of its flows in retrieval order and can check that arrival
/// timestamps never step backwards within a flow. Violations are counted
/// into a shared atomic (a panic inside a worker thread would poison the
/// scoped join instead of failing the test cleanly).
struct OrderProbe {
    last: HashMap<u32, Nanos>,
    violations: Arc<AtomicU64>,
    seen: Arc<AtomicU64>,
}

impl PacketProcessor for OrderProbe {
    fn name(&self) -> &'static str {
        "order-probe"
    }

    fn cycles_per_packet(&self) -> u64 {
        1
    }

    fn process(&mut self, mbuf: &mut Mbuf) -> Verdict {
        self.seen.fetch_add(1, Ordering::Relaxed);
        if let Some(prev) = self.last.insert(mbuf.rss_hash, mbuf.arrival) {
            if mbuf.arrival < prev {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
        }
        Verdict::Forward
    }
}

proptest! {
    #[test]
    fn sharded_ingest_preserves_flow_order_and_conserves(
        gen_shards in 1usize..=4,
        n_queues in 1usize..=2,
        path_idx in 0usize..=2,
        seed in any::<u64>(),
    ) {
        let _guard = serial();
        let path = [RingPath::Spsc, RingPath::Mpsc, RingPath::Locked][path_idx];
        let cfg = MetronomeConfig {
            m_threads: n_queues.max(2),
            n_queues,
            ..MetronomeConfig::default()
        };
        // Short but non-trivial: ~2000 offered packets per case. With
        // `gen_shards > 1` on SPSC the runner upgrades the rings to MPSC
        // (part of the property: the upgrade must not cost conservation).
        let sc = Scenario::metronome(
            "prop-sharded-ingest",
            cfg,
            TrafficSpec::CbrPps(50_000.0),
        )
        .with_duration(Nanos::from_millis(40))
        .with_seed(seed)
        .with_ring_path(path)
        .with_gen_shards(gen_shards)
        .with_latency();

        let violations = Arc::new(AtomicU64::new(0));
        let seen = Arc::new(AtomicU64::new(0));
        let r = run_realtime_with(&sc, &|_q| {
            Box::new(OrderProbe {
                last: HashMap::new(),
                violations: Arc::clone(&violations),
                seen: Arc::clone(&seen),
            })
        });

        // Exact conservation, whatever the shard/queue/ring combination.
        prop_assert_eq!(
            r.offered,
            r.forwarded + r.dropped,
            "packets leaked: shards={} queues={} path={:?}",
            gen_shards,
            n_queues,
            path
        );
        // Every forwarded frame passed through a probe.
        prop_assert_eq!(seen.load(Ordering::Relaxed), r.forwarded);
        // Per-flow order survived concurrent shard production and the
        // scatter-gather dispatch into the rings.
        prop_assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "per-flow arrival order violated: shards={} queues={} path={:?} seed={}",
            gen_shards,
            n_queues,
            path,
            seed
        );
        // Pool audit: every buffer went home, no cache kept any.
        let m = r.mempool.expect("realtime runs report mempool stats");
        prop_assert_eq!(m.allocs, m.frees, "pool alloc/free imbalance");
        prop_assert_eq!(m.cached, 0, "worker caches must flush on join");
        // The generator measured its own pacing jitter for the run.
        if r.offered > 0 {
            prop_assert!(
                r.gen_jitter_us.is_some(),
                "offered traffic must come with jitter telemetry"
            );
        }
    }
}
