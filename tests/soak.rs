//! Soak tests: bounded fault-injection runs that must conserve every
//! packet, leak no buffer, and recover within a stated bound.
//!
//! Two layers:
//!
//! * **Simulation soak** — a seeded [`FaultPlan`] over the sim backend
//!   with windowed telemetry: per-window counters must telescope exactly
//!   to the aggregate report (conservation across *every* fault window),
//!   and once the last fault window has passed, drops must cease within
//!   one full telemetry window (the recovery bound).
//! * **Daemon soak** — the ISSUE's scripted demo: an in-process
//!   `metronomed` (real Unix socket, real HTTP listener, real worker
//!   threads) runs a scenario under a fault plan injecting four distinct
//!   fault kinds, is scraped live over HTTP (nonzero windowed
//!   throughput), reconfigured mid-run without restart, then drained with
//!   the pool audited: `in_use == 0`, `cached() == 0`, `allocs == frees`.
//!
//! CI keeps this to ~10 s; set `METRONOME_SOAK_SECS` (e.g. `120`) for a
//! multi-minute local soak. Prometheus and CSV snapshots land in
//! `target/soak-artifacts/` for CI to upload on failure.

mod common;

use common::serial;
use metronome_daemon::{ControlServer, DaemonConfig, MetricsServer, ServiceEngine};
use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;
use metronome_repro::telemetry::export::{csv, prometheus};
use metronome_repro::telemetry::Json;
use metronome_repro::traffic::FaultPlan;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Soak length: ~10 s under CI defaults, minutes when asked for.
fn soak_secs() -> u64 {
    std::env::var("METRONOME_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .max(4)
}

fn artifacts_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("soak-artifacts");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

// ---- simulation soak -----------------------------------------------------

/// Seeded chaos on the sim backend: exact conservation through every
/// fault window, and recovery ≤ one telemetry window after the last
/// fault ends.
#[test]
fn sim_soak_conserves_and_recovers() {
    // Sim time is decoupled from wall time; scale it with the soak knob
    // so the local multi-minute soak also deepens this run.
    let dur = Nanos::from_millis(100 * soak_secs().min(60));
    let window = dur / 20;
    let plan = FaultPlan::seeded(0x50AC, dur, 8);
    assert!(plan.distinct_kinds() >= 3, "seeded plan must mix kinds");
    let horizon = plan.horizon();
    assert!(horizon <= dur, "faults must end inside the run");

    let sc = Scenario::metronome(
        "sim-soak",
        MetronomeConfig::default(),
        TrafficSpec::CbrPps(2e6),
    )
    .with_duration(dur)
    .with_series(window)
    .with_faults(plan)
    .with_seed(0x50AC);
    let r = run(&sc);
    let ts = r.timeseries.as_ref().expect("series requested");

    // Snapshot for CI before any assertion can fail.
    let dir = artifacts_dir();
    std::fs::write(dir.join("sim-soak.csv"), csv::timeseries_csv(ts)).unwrap();
    std::fs::write(
        dir.join("sim-soak.prom"),
        prometheus::render(&prometheus::snapshot_metrics(&ts.totals)),
    )
    .unwrap();

    // Exact conservation, fault drops included, across the whole run.
    // `in_flight` is the final window's occupancy gauge: packets accepted
    // by a ring but not yet retrieved when the horizon cut the run.
    let in_flight: u64 = ts.windows.last().map_or(0, |w| w.occupancy.iter().sum());
    assert_eq!(
        r.offered,
        r.forwarded + r.dropped + in_flight,
        "offered == processed + dropped must hold under chaos"
    );
    assert_eq!(r.dropped, r.dropped_ring + r.dropped_pool + r.dropped_fault);
    assert!(r.dropped_fault > 0, "the plan must have actually injected");
    // ...and window-by-window: every column telescopes to the aggregate.
    assert_eq!(ts.column_sum(|w| w.retrieved), r.forwarded);
    assert_eq!(ts.column_sum(|w| w.dropped_ring), r.dropped_ring);
    assert_eq!(ts.column_sum(|w| w.dropped_pool), r.dropped_pool);
    assert_eq!(ts.column_sum(|w| w.dropped_fault), r.dropped_fault);
    assert_eq!(
        ts.column_sum(|w| w.offered),
        ts.column_sum(|w| w.retrieved)
            + ts.column_sum(|w| w.dropped_ring)
            + ts.column_sum(|w| w.dropped_pool)
            + ts.column_sum(|w| w.dropped_fault),
        "per-window conservation must telescope"
    );

    // Recovery bound: one full window after the last fault ends, all drop
    // columns must be back to zero (a stall's release burst may still
    // tail-drop in the window containing the release, never later).
    let recovered_after = horizon + window;
    let tail: Vec<_> = ts
        .windows
        .iter()
        .filter(|w| w.start >= recovered_after)
        .collect();
    assert!(
        !tail.is_empty(),
        "run must extend past the recovery deadline"
    );
    for w in tail {
        assert_eq!(
            w.dropped_ring + w.dropped_pool + w.dropped_fault,
            0,
            "window [{}, {}) still dropping after recovery deadline {}",
            w.start,
            w.end,
            recovered_after
        );
    }
}

// ---- daemon soak ---------------------------------------------------------

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(path: &PathBuf) -> Client {
        let stream = UnixStream::connect(path).expect("connect control socket");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        loop {
            match self.reader.read_line(&mut reply) {
                Ok(0) => panic!("daemon hung up mid-reply"),
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
        let reply = Json::parse(reply.trim()).expect("daemon replies are valid JSON");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "daemon refused: {}",
            reply.render()
        );
        reply
    }
}

/// One real HTTP scrape of the daemon's metrics endpoint.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read scrape");
    let (head, body) = raw.split_once("\r\n\r\n").expect("well-formed response");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_string()
}

/// Value of one counter in a scraped Prometheus exposition.
fn counter(text: &str, name: &str) -> u64 {
    let metrics = prometheus::parse(text).expect("scrape must parse");
    let m = metrics
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("{name} missing from scrape"));
    m.samples.iter().map(|s| s.value as u64).sum()
}

fn u(reply: &Json, key: &str) -> u64 {
    reply
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{key} missing from {}", reply.render()))
}

/// The ISSUE's scripted demo, end to end: submit over the socket under a
/// four-kind fault plan, scrape live Prometheus mid-run, reconfigure the
/// rate without restart, drain with the pool audited.
#[test]
fn daemon_soak_full_lifecycle() {
    let _guard = serial();
    let secs = soak_secs();
    let socket = std::env::temp_dir().join(format!("metronomed-soak-{}.sock", std::process::id()));
    let engine = Arc::new(ServiceEngine::new(DaemonConfig {
        n_queues: 2,
        ring_size: 256,
        ..DaemonConfig::default()
    }));
    let control = ControlServer::start(&socket, Arc::clone(&engine)).expect("bind socket");
    let metrics = MetricsServer::start("127.0.0.1:0", Arc::clone(&engine)).expect("bind metrics");
    let mut c = Client::connect(&socket);

    // Fault schedule across the run: all four kinds, each window sized
    // relative to the soak length, all ending before the final quarter so
    // the drain happens on a recovered pipeline.
    let ms = secs * 1000;
    let submit = format!(
        concat!(
            r#"{{"cmd":"submit","name":"soak","rate_pps":40000,"discipline":"metronome","m":2,"seed":7,"#,
            r#""faults":["#,
            r#"{{"kind":"rate-spike","at_ms":{},"duration_ms":{},"factor":3.0}},"#,
            r#"{{"kind":"queue-stall","at_ms":{},"duration_ms":{}}},"#,
            r#"{{"kind":"pool-starve","at_ms":{},"duration_ms":{},"fraction":1.0}},"#,
            r#"{{"kind":"jitter-burst","at_ms":{},"duration_ms":{},"drop_prob":0.3}}"#,
            r#"]}}"#
        ),
        ms / 8,
        ms / 8,
        ms * 3 / 8,
        ms / 16,
        ms / 2,
        ms / 8,
        ms * 5 / 8,
        ms / 8,
    );
    let accepted = c.send(&submit);
    assert!(
        u(&accepted, "fault_kinds") >= 3,
        "demo must inject at least three distinct fault kinds"
    );
    assert_eq!(u(&accepted, "fault_events"), 4);

    // Poll stats over the socket for the whole soak window: counters must
    // be monotone through every fault, and the identity
    // processed + dropped <= offered must hold at every instant (the
    // difference is in-flight packets queued in the rings).
    let started = Instant::now();
    let soak = Duration::from_secs(secs);
    let mut polls: Vec<(f64, u64, u64, u64)> = Vec::new();
    let mut prev = (0u64, 0u64, 0u64);
    let mut scrape_mid: Option<(Instant, u64)> = None;
    let mut reconfigured = false;
    while started.elapsed() < soak {
        std::thread::sleep(Duration::from_millis(200));
        let s = c.send(r#"{"cmd":"stats"}"#);
        let now = (u(&s, "offered"), u(&s, "processed"), u(&s, "dropped"));
        assert!(
            now.0 >= prev.0 && now.1 >= prev.1 && now.2 >= prev.2,
            "counters must be monotone under faults: {prev:?} -> {now:?}"
        );
        assert!(
            now.1 + now.2 <= now.0,
            "processed + dropped exceeded offered: {now:?}"
        );
        prev = now;
        polls.push((started.elapsed().as_secs_f64(), now.0, now.1, now.2));

        // Mid-run: scrape Prometheus twice ≥ 1 s apart — the live
        // windowed throughput must be nonzero — and raise the rate once
        // through the socket (no restart).
        if started.elapsed() > soak / 4 {
            match scrape_mid {
                None => {
                    scrape_mid = Some((
                        Instant::now(),
                        counter(&scrape(metrics.addr()), "metronome_retrieved_packets_total"),
                    ));
                }
                Some((at, first)) if at.elapsed() >= Duration::from_secs(1) && !reconfigured => {
                    let second =
                        counter(&scrape(metrics.addr()), "metronome_retrieved_packets_total");
                    assert!(
                        second > first,
                        "mid-run scrape shows no windowed throughput ({first} -> {second})"
                    );
                    let r = c.send(r#"{"cmd":"reconfigure","rate_pps":80000}"#);
                    assert_eq!(r.get("rate_pps").and_then(Json::as_f64), Some(80000.0));
                    reconfigured = true;
                }
                _ => {}
            }
        }
    }
    assert!(reconfigured, "soak too short to exercise reconfigure");
    let processed_at_reconf = prev.1;

    // The re-rated pipeline kept processing after the live reconfigure.
    std::thread::sleep(Duration::from_millis(300));
    let s = c.send(r#"{"cmd":"stats"}"#);
    assert!(u(&s, "processed") > processed_at_reconf);

    // Snapshot artifacts before the final assertions.
    let dir = artifacts_dir();
    let final_scrape = scrape(metrics.addr());
    std::fs::write(dir.join("daemon-soak.prom"), &final_scrape).unwrap();
    let mut csv_out = String::from("t_s,offered,processed,dropped\n");
    for (t, o, p, d) in &polls {
        csv_out.push_str(&format!("{t:.3},{o},{p},{d}\n"));
    }
    std::fs::write(dir.join("daemon-soak-polls.csv"), csv_out).unwrap();

    // Drain: exact conservation and a balanced pool, audited by the
    // daemon itself and re-checked here against the engine's own pool.
    let drain = c.send(r#"{"cmd":"shutdown"}"#);
    assert_eq!(drain.get("state").and_then(Json::as_str), Some("drained"));
    assert_eq!(
        u(&drain, "offered"),
        u(&drain, "processed") + u(&drain, "dropped"),
        "drain audit must conserve exactly: {}",
        drain.render()
    );
    assert_eq!(drain.get("conserved").and_then(Json::as_bool), Some(true));
    assert_eq!(
        drain.get("pool_balanced").and_then(Json::as_bool),
        Some(true),
        "pool must drain whole: {}",
        drain.render()
    );
    assert_eq!(u(&drain, "allocs"), u(&drain, "frees"));
    assert_eq!(u(&drain, "pool_cached"), 0);
    assert!(
        u(&drain, "dropped_fault") > 0,
        "the jitter burst must have suppressed packets"
    );
    assert!(u(&drain, "processed") > 0);

    control.join();
    metrics.join();
}
