//! Whole-system integration tests: the paper's headline results must
//! emerge from the composed substrates, exercised through the facade.

use metronome_repro::core::MetronomeConfig;
use metronome_repro::dpdk::NicProfile;
use metronome_repro::os::Governor;
use metronome_repro::runtime::{run, FerretSpec, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;

fn second() -> Nanos {
    Nanos::from_secs(1)
}

#[test]
fn headline_cpu_proportionality() {
    // The abstract's claim: "CPU utilization proportional to the load".
    let mut last = f64::MAX;
    for gbps in [10.0, 5.0, 1.0, 0.0] {
        let traffic = if gbps == 0.0 {
            TrafficSpec::Silent
        } else {
            TrafficSpec::CbrGbps(gbps)
        };
        let r =
            run(
                &Scenario::metronome(format!("prop-{gbps}"), MetronomeConfig::default(), traffic)
                    .with_duration(second()),
            );
        assert!(r.loss < 1e-3, "{gbps} Gbps lost {}", r.loss);
        // Near the idle floor the trend flattens and can tick up ~1-2pp:
        // at zero traffic every thread is a primary waking at the full
        // TS = M·V̄ cadence, while a whisper of load parks an occasional
        // loser at TL. Allow that wobble; the proportional fall from
        // line rate to the floor is the claim under test.
        assert!(
            r.cpu_total_pct < last + 2.5,
            "CPU must fall with load: {} at {gbps} Gbps after {last}",
            r.cpu_total_pct
        );
        last = r.cpu_total_pct;
    }
    // And the floor is the paper's ≈20%, not zero and not 100%.
    assert!((10.0..30.0).contains(&last), "idle floor {last}");
}

#[test]
fn const_sleep_sim_sits_between_static_and_metronome() {
    // The constant-sleep strawman in the simulator: it conserves packets,
    // forwards the offered load, costs far less than a burned core — but
    // its fixed timeout cannot beat the adaptive TS at the same latency
    // target, which is the whole point of eq. (13).
    let traffic = TrafficSpec::CbrGbps(1.0);
    let cs = run(
        &Scenario::const_sleep("cs-1g", 1, Nanos::from_micros(100), traffic.clone())
            .with_duration(second()),
    );
    assert_eq!(cs.offered, cs.forwarded + cs.dropped);
    assert!(cs.loss < 1e-2, "const-sleep lost {}", cs.loss);
    assert!(cs.forwarded > 0);
    // One thread waking every 100 µs costs a few percent, not a core.
    assert!(
        cs.cpu_total_pct < 60.0,
        "const-sleep CPU {}",
        cs.cpu_total_pct
    );
    let st = run(&Scenario::static_dpdk("st-1g", 1, traffic).with_duration(second()));
    assert!(cs.cpu_total_pct < st.cpu_total_pct);
    // Its wake cadence is the fixed 1/P regardless of load (±20% for
    // scheduling noise) — the non-adaptivity Metronome fixes.
    let expected_wakes = 1e9 / 100_000.0; // duration / period
    assert!(
        (cs.total_wakes as f64) > 0.8 * expected_wakes
            && (cs.total_wakes as f64) < 1.2 * expected_wakes,
        "fixed-period wakes drifted: {} vs ~{expected_wakes}",
        cs.total_wakes
    );
}

#[test]
fn vacation_target_controls_latency() {
    // §IV-D: the vacation target is the latency knob.
    let lat = |v_us: u64| {
        let r = run(&Scenario::metronome(
            "knob",
            MetronomeConfig {
                v_target: Nanos::from_micros(v_us),
                ..MetronomeConfig::default()
            },
            TrafficSpec::CbrGbps(10.0),
        )
        .with_duration(second())
        .with_latency());
        r.latency_us.expect("sampled").mean
    };
    let l2 = lat(2);
    let l10 = lat(10);
    assert!(l2 < l10, "latency must follow the target: {l2} !< {l10}");
}

#[test]
fn static_dpdk_burns_a_core_regardless_of_load() {
    for traffic in [TrafficSpec::CbrGbps(10.0), TrafficSpec::Silent] {
        let r = run(&Scenario::static_dpdk("static", 1, traffic).with_duration(second()));
        assert!(
            (97.0..103.0).contains(&r.cpu_total_pct),
            "static CPU {}",
            r.cpu_total_pct
        );
    }
}

#[test]
fn xdp_is_free_at_idle_expensive_at_line_rate() {
    let idle = run(&Scenario::xdp("xi", 4, TrafficSpec::Silent).with_duration(second()));
    assert!(idle.cpu_total_pct < 0.5, "{}", idle.cpu_total_pct);
    let busy = run(&Scenario::xdp("xb", 4, TrafficSpec::CbrGbps(10.0)).with_duration(second()));
    assert!(busy.cpu_total_pct > 150.0, "{}", busy.cpu_total_pct);
    assert!(busy.loss < 1e-4);
}

#[test]
fn multiqueue_sustains_the_xl710_cap() {
    let r = run(&Scenario::metronome(
        "mq",
        MetronomeConfig::multiqueue(5, 4),
        TrafficSpec::CbrPps(37e6),
    )
    .with_nic(NicProfile::XL710)
    .with_duration(second()));
    assert!(r.throughput_mpps > 36.5, "{}", r.throughput_mpps);
    // "saves more than half of static DPDK's CPU cycles" (vs 400%).
    assert!(r.cpu_total_pct < 200.0, "{}", r.cpu_total_pct);
    assert_eq!(r.queues.len(), 4);
}

#[test]
fn sharing_preserves_line_rate_for_metronome_only() {
    let ferret = |workers: usize, nice: i8| FerretSpec {
        n_workers: workers,
        standalone: Nanos::from_millis(400),
        nice,
        on_net_cores: true,
    };
    let st = run(&Scenario::static_dpdk("s", 1, TrafficSpec::CbrGbps(10.0))
        .with_duration(Nanos::from_secs(2))
        .with_ferret(ferret(1, 0)));
    let me = run(
        &Scenario::metronome("m", MetronomeConfig::default(), TrafficSpec::CbrGbps(10.0))
            .with_duration(Nanos::from_secs(2))
            .with_ferret(ferret(3, 19)),
    );
    assert!(
        st.throughput_mpps < 12.0,
        "static kept {}",
        st.throughput_mpps
    );
    assert!(
        me.throughput_mpps > 14.5,
        "metronome lost rate: {}",
        me.throughput_mpps
    );
    assert!(me.loss < 0.01);
    let s_slow = st.ferret_slowdown().expect("static ferret finished");
    let m_slow = me.ferret_slowdown().expect("metronome ferret finished");
    assert!(
        s_slow > 2.0 && m_slow < 1.8,
        "slowdowns {s_slow} vs {m_slow}"
    );
}

#[test]
fn ondemand_governor_trades_cpu_for_power() {
    let perf =
        run(
            &Scenario::metronome("p", MetronomeConfig::default(), TrafficSpec::CbrGbps(1.0))
                .with_duration(second())
                .with_governor(Governor::Performance),
        );
    let onde =
        run(
            &Scenario::metronome("o", MetronomeConfig::default(), TrafficSpec::CbrGbps(1.0))
                .with_duration(second())
                .with_governor(Governor::Ondemand),
        );
    assert!(onde.cpu_total_pct > perf.cpu_total_pct);
    assert!(onde.power_watts < perf.power_watts);
    assert!(onde.loss < 1e-3);
}

#[test]
fn adaptation_pins_the_vacation_across_loads() {
    // The whole point of eq. (13): mean V stays near the (overhead-shifted)
    // target whether the load is 10% or 100%.
    let v_at = |gbps: f64| {
        run(&Scenario::metronome(
            "pin",
            MetronomeConfig::default(),
            TrafficSpec::CbrGbps(gbps),
        )
        .with_duration(second()))
        .mean_vacation_us()
    };
    let hi = v_at(10.0);
    let lo = v_at(1.0);
    assert!(
        (hi - lo).abs() < 12.0,
        "vacation must stay pinned: {hi} vs {lo} µs"
    );
}

#[test]
fn deterministic_given_seed() {
    let mk = || {
        Scenario::metronome(
            "det",
            MetronomeConfig::default(),
            TrafficSpec::CbrGbps(10.0),
        )
        .with_duration(Nanos::from_millis(300))
        .with_latency()
        .with_seed(0xFEED)
    };
    let a = run(&mk());
    let b = run(&mk());
    assert_eq!(a.forwarded, b.forwarded);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.total_wakes, b.total_wakes);
    assert_eq!(a.cpu_per_thread_pct, b.cpu_per_thread_pct);
    let (la, lb) = (a.latency_us.unwrap(), b.latency_us.unwrap());
    assert_eq!(la.mean, lb.mean);
    assert_eq!(la.count, lb.count);

    // A different seed must actually change the stochastic path.
    let c = run(&mk().with_seed(0xBEEF));
    assert_ne!(a.total_wakes, c.total_wakes);
}

#[test]
fn overload_saturates_at_mu_without_collapse() {
    // Offer line rate to the IPsec gateway (µ ≈ 5.6 Mpps): Metronome must
    // degrade gracefully into continuous draining, not fall over.
    let r = run(&Scenario::metronome(
        "overload",
        MetronomeConfig::default(),
        TrafficSpec::CbrPps(14.88e6),
    )
    .with_app(metronome_repro::runtime::AppProfile::ipsec())
    .with_duration(second()));
    assert!(
        (5.0..6.2).contains(&r.throughput_mpps),
        "{}",
        r.throughput_mpps
    );
    // One thread pinned on the queue: CPU ≈ one core.
    assert!(
        (90.0..115.0).contains(&r.cpu_total_pct),
        "{}",
        r.cpu_total_pct
    );
}

#[test]
fn analytical_predictor_matches_simulation() {
    // Closed-form CPU predictions (metronome_core::predictor) must track
    // the discrete-event system within a modest envelope — the resource
    // analogue of the paper's Fig. 4 model validation.
    use metronome_repro::core::predictor::{predict, CostModel};
    let cost = CostModel::calibrated();
    for gbps in [10.0, 5.0, 1.0] {
        let lambda = metronome_repro::dpdk::nic::gbps_to_pps(gbps, 64);
        let predicted = predict(3, 10e-6, 500e-6, lambda, &cost).cpu_fraction * 100.0;
        let simulated = run(&Scenario::metronome(
            format!("pred-{gbps}"),
            MetronomeConfig::default(),
            TrafficSpec::CbrGbps(gbps),
        )
        .with_duration(second()))
        .cpu_total_pct;
        let err = (predicted - simulated).abs() / simulated;
        // The predictor uses the paper's ideal renewal model (E[V] = V̄);
        // the simulated system carries the real-world E[V] inflation from
        // sleep overshoot and imperfect wake decorrelation (see Table I:
        // measured V ≈ 2x target), so a generous envelope is the honest
        // check here — the *trend* across loads is what must agree.
        assert!(
            err < 0.55,
            "{gbps} Gbps: predicted {predicted:.1}% vs simulated {simulated:.1}%"
        );
    }
}
