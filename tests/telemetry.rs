//! Cross-layer telemetry tests: window conservation on both backends,
//! Prometheus round-trip on a real run's counters, and the zero-traffic
//! (offered = 0) regression path.
//!
//! The conservation property is the subsystem's core contract: the
//! sampler differences cumulative snapshots, so the per-window
//! `retrieved` / `dropped_ring` / `dropped_pool` columns must sum
//! *exactly* — not approximately — to the final aggregate counters of the
//! run, on the simulation and the realtime backend alike.

mod common;

use common::serial;
use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run, run_realtime, RunReport, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;
use metronome_repro::telemetry::export::prometheus;
use metronome_repro::telemetry::TimeSeries;
use proptest::prelude::*;

/// Window columns must telescope to the report's aggregate counters.
fn assert_conservation(r: &RunReport, ts: &TimeSeries) {
    assert_eq!(
        ts.column_sum(|w| w.retrieved),
        r.forwarded,
        "windowed retrieved must sum to forwarded"
    );
    assert_eq!(
        ts.column_sum(|w| w.dropped_ring),
        r.dropped_ring,
        "windowed ring drops must sum to dropped_ring"
    );
    assert_eq!(
        ts.column_sum(|w| w.dropped_pool),
        r.dropped_pool,
        "windowed pool drops must sum to dropped_pool"
    );
    // And the series' own totals agree with the report.
    assert_eq!(ts.totals.retrieved, r.forwarded);
    assert_eq!(ts.totals.dropped_ring + ts.totals.dropped_pool, r.dropped);
}

proptest! {
    /// Simulation backend: any rate (including overload), any seed, any
    /// window count — per-window deltas sum exactly to the aggregates.
    #[test]
    fn sim_windows_conserve_counters(
        kpps in 0u64..40_000,
        n_windows in 2u64..12,
        seed in any::<u64>(),
    ) {
        let dur = Nanos::from_millis(40);
        let sc = Scenario::metronome(
            "telemetry-sim-conservation",
            MetronomeConfig::default(),
            TrafficSpec::CbrPps(kpps as f64 * 1e3),
        )
        .with_duration(dur)
        .with_series(dur / n_windows)
        .with_seed(seed);
        let r = run(&sc);
        let ts = r.timeseries.as_ref().expect("series requested");
        prop_assert!(ts.len() >= n_windows as usize);
        assert_conservation(&r, ts);
    }
}

#[test]
fn realtime_windows_conserve_counters() {
    let _guard = serial();
    // A few deliberately different operating points: clean CBR, ring
    // overload (tiny rings), pool starvation (undersized mempool). Each
    // must conserve exactly, drops included.
    let points: &[(f64, usize, Option<usize>)] = &[
        (40e3, 1024, None),
        (400e3, 32, None),
        (200e3, 256, Some(64)),
    ];
    for (i, &(pps, ring, pool)) in points.iter().enumerate() {
        let cfg = MetronomeConfig {
            m_threads: 2,
            n_queues: 2,
            ..MetronomeConfig::default()
        };
        let mut sc = Scenario::metronome(
            format!("telemetry-rt-conservation-{i}"),
            cfg,
            TrafficSpec::CbrPps(pps),
        )
        .with_duration(Nanos::from_millis(60))
        .with_series(Nanos::from_millis(10))
        .with_ring(ring)
        .with_latency()
        .with_seed(0x7E1E + i as u64);
        if let Some(p) = pool {
            sc = sc.with_mbuf_pool(p);
        }
        let r = run_realtime(&sc);
        let ts = r.timeseries.as_ref().expect("series requested");
        assert!(ts.len() >= 2, "point {i}: expected several windows");
        assert_conservation(&r, ts);
        // The gauges mean something: occupancy columns exist per queue.
        assert!(ts.windows.iter().all(|w| w.occupancy.len() == 2));
    }
}

#[test]
fn realtime_prometheus_export_round_trips() {
    let _guard = serial();
    let sc = Scenario::metronome(
        "telemetry-prometheus",
        MetronomeConfig::default(),
        TrafficSpec::CbrPps(50e3),
    )
    .with_duration(Nanos::from_millis(50))
    .with_series(Nanos::from_millis(10))
    .with_seed(0xB0B);
    let r = run_realtime(&sc);
    let ts = r.timeseries.as_ref().expect("series requested");
    let metrics = prometheus::snapshot_metrics(&ts.totals);
    let text = prometheus::render(&metrics);
    let parsed = prometheus::parse(&text).expect("rendered text must parse");
    assert_eq!(parsed, metrics, "render → parse must be the identity");
    // The scraped counter equals the report's headline number.
    let retrieved = parsed
        .iter()
        .find(|m| m.name == "metronome_retrieved_packets_total")
        .expect("retrieved counter exported");
    assert_eq!(retrieved.samples[0].value as u64, r.forwarded);
}

/// The zero-traffic path: every ratio field must be a plain 0, not NaN —
/// on both backends, and through the JSON writer.
#[test]
fn zero_traffic_reports_have_no_nan() {
    let _guard = serial();
    let base = |name: &str| {
        Scenario::metronome(
            name.to_string(),
            MetronomeConfig::default(),
            TrafficSpec::Silent,
        )
        .with_duration(Nanos::from_millis(40))
        .with_series(Nanos::from_millis(10))
        .with_seed(3)
    };
    let sim = run(&base("zero-traffic-sim"));
    let rt = run_realtime(&base("zero-traffic-rt"));
    for r in [&sim, &rt] {
        assert_eq!(r.offered, 0, "{}", r.name);
        assert_eq!(
            r.loss, 0.0,
            "{}: loss must be 0 when nothing offered",
            r.name
        );
        assert_eq!(r.throughput_mpps, 0.0, "{}", r.name);
        for q in 0..r.queues.len() {
            assert_eq!(r.queue_share(q), 0.0, "{}: share of queue {q}", r.name);
        }
        let ts = r.timeseries.as_ref().expect("series requested");
        assert!(ts.windows.iter().all(|w| w.loss() == 0.0));
        assert!(ts.windows.iter().all(|w| w.throughput_mpps() == 0.0));
        // Nothing non-finite may leak into the machine-readable output.
        let json = r.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{}", r.name);
        assert!(json.contains("\"offered\":0"));
    }
}
