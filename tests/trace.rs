//! Flight-recorder tracing tests: ring overflow semantics as a property
//! over arbitrary capacities, per-worker timestamp monotonicity of
//! merged multi-worker dumps, and the end-to-end realtime contract — a
//! fixed-seed traced run must produce a loadable Chrome trace-event
//! document with events from every worker, reconciled against the run's
//! own packet counts.

mod common;

use common::serial;
use metronome_repro::core::MetronomeConfig;
use metronome_repro::runtime::{run_realtime, Scenario, TrafficSpec};
use metronome_repro::sim::Nanos;
use metronome_repro::telemetry::{
    Json, TraceEvent, TraceEventKind, TraceHub, TraceRing, TraceSink, TraceVerdict,
};
use proptest::prelude::*;

proptest! {
    /// Drop-oldest over any capacity and load: the ring stores exactly
    /// the newest `min(n, cap)` events in push order, counts every
    /// overflow, and never loses a per-kind recorded count.
    #[test]
    fn ring_overflow_is_exact_for_any_capacity(
        cap in 1usize..64,
        n in 0usize..200,
    ) {
        let kinds = [
            TraceEventKind::TurnVerdict,
            TraceEventKind::Sleep,
            TraceEventKind::Burst,
            TraceEventKind::Park,
        ];
        let mut ring = TraceRing::new(cap);
        for i in 0..n {
            ring.push(TraceEvent {
                ts_ns: i as u64,
                kind: kinds[i % kinds.len()],
                a: i as u64,
                b: 0,
            });
        }
        prop_assert_eq!(ring.len(), n.min(cap));
        prop_assert_eq!(ring.dropped(), n.saturating_sub(cap) as u64);
        prop_assert_eq!(ring.recorded(), n as u64);
        let stored = ring.ordered();
        // The survivors are exactly the newest events, oldest first.
        for (j, e) in stored.iter().enumerate() {
            let expect = n - n.min(cap) + j;
            prop_assert_eq!(e.ts_ns, expect as u64);
            prop_assert_eq!(e.a, expect as u64);
        }
        // Recorded-by-kind survives overwrites: it telescopes to n.
        let by_kind: u64 = kinds.iter().map(|&k| ring.kind_count(k)).sum();
        prop_assert_eq!(by_kind, n as u64);
    }

    /// Concurrent recorders on one hub: each worker's stored ring is
    /// timestamp-monotone (record order is time order), and the merged
    /// dump is globally sorted while preserving every worker's order —
    /// so a multi-worker Chrome dump never shows a worker's own events
    /// out of sequence.
    #[test]
    fn merged_multi_worker_dump_is_timestamp_monotone_per_worker(
        workers in 1usize..4,
        per in 20usize..200,
        cap in 8usize..64,
    ) {
        let hub = TraceHub::new(workers, cap);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let rec = hub.recorder(w);
                std::thread::spawn(move || {
                    for i in 0..per {
                        match (i + w) % 5 {
                            0 => rec.turn_verdict(TraceVerdict::Continue),
                            1 => rec.burst(w, 1 + i as u64 % 32),
                            2 => rec.sleep(Nanos(100), Nanos(120), Nanos(20)),
                            3 => rec.first_poll(Nanos(i as u64)),
                            _ => rec.sched_pick(w, Nanos(i as u64)),
                        }
                    }
                    // Recorder drops here: unconditional blocking flush.
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        let dump = hub.dump();
        prop_assert_eq!(dump.workers.len(), workers);
        for w in &dump.workers {
            prop_assert_eq!(w.events.len(), per.min(cap));
            prop_assert_eq!(w.dropped, per.saturating_sub(cap) as u64);
            for pair in w.events.windows(2) {
                prop_assert!(
                    pair[0].ts_ns <= pair[1].ts_ns,
                    "worker {} ring out of time order", w.worker
                );
            }
        }
        let merged = dump.merged();
        prop_assert_eq!(merged.len(), workers * per.min(cap));
        for pair in merged.windows(2) {
            prop_assert!(pair[0].1.ts_ns <= pair[1].1.ts_ns, "merged dump unsorted");
        }
        // Stable sort: each worker's subsequence is its ring order.
        for w in 0..workers {
            let sub: Vec<&TraceEvent> =
                merged.iter().filter(|(who, _)| *who == w).map(|(_, e)| e).collect();
            prop_assert_eq!(sub.len(), per.min(cap));
        }
    }
}

/// A fixed-seed realtime run with tracing armed: the dump covers every
/// worker, burst events reconcile against forwarded packets, and the
/// rendered Chrome document is valid JSON carrying `ph`/`ts`/`pid`/`tid`
/// on every event.
#[test]
fn realtime_trace_dump_loads_and_covers_every_worker() {
    let _guard = serial();
    let cfg = MetronomeConfig {
        m_threads: 2,
        n_queues: 2,
        ..MetronomeConfig::default()
    };
    let sc = Scenario::metronome("trace-rt", cfg, TrafficSpec::CbrPps(40_000.0))
        .with_duration(Nanos::from_millis(60))
        .with_trace()
        .with_seed(0x9A);
    let r = run_realtime(&sc);
    assert!(r.forwarded > 0, "no traffic forwarded");
    let dump = r.trace.as_ref().expect("tracing was armed");
    assert_eq!(dump.workers.len(), 2, "one recorder per worker");
    for w in &dump.workers {
        assert!(!w.events.is_empty(), "worker {} recorded nothing", w.worker);
    }
    // Every drained burst is one Burst event; a burst carries >= 1
    // packet, so the event count is positive and bounded by forwarded.
    let bursts = dump.kind_count(TraceEventKind::Burst);
    assert!(bursts > 0, "traffic flowed but no burst events");
    assert!(
        bursts <= r.forwarded,
        "more burst events ({bursts}) than packets ({})",
        r.forwarded
    );
    // Sleeping disciplines oversleep; the histogram observed every sleep.
    assert!(
        dump.kind_count(TraceEventKind::Sleep) > 0,
        "metronome workers never slept"
    );

    let rendered = dump.chrome_json().render();
    let doc = Json::parse(&rendered).expect("chrome dump must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut tids = std::collections::HashSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("event ph");
        assert!(ev.get("pid").and_then(Json::as_u64).is_some(), "event pid");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("event tid");
        if ph != "M" {
            assert!(ev.get("ts").is_some(), "non-metadata event without ts");
            tids.insert(tid);
        }
    }
    assert_eq!(tids.len(), 2, "events from every worker thread");

    // The report embeds the summary, not the full dump.
    let report = Json::parse(&r.to_json()).expect("report JSON");
    let summary = report.get("trace").expect("trace key");
    assert!(
        summary.get("events").and_then(Json::as_u64).unwrap_or(0) > 0,
        "summary should count events"
    );
}

/// The disabled path stays disabled: a scenario without `with_trace`
/// reports no dump and renders `"trace": null`.
#[test]
fn untraced_realtime_run_reports_no_trace() {
    let _guard = serial();
    let sc = Scenario::metronome(
        "trace-off",
        MetronomeConfig::default(),
        TrafficSpec::CbrPps(20_000.0),
    )
    .with_duration(Nanos::from_millis(30))
    .with_seed(0x9B);
    let r = run_realtime(&sc);
    assert!(r.trace.is_none(), "tracing must stay opt-in");
    let report = Json::parse(&r.to_json()).expect("report JSON");
    assert!(
        matches!(report.get("trace"), Some(Json::Null)),
        "untraced report renders trace: null"
    );
}
