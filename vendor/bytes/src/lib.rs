//! Minimal offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The workspace builds in environments without registry access, so the
//! subset of the `bytes` API the packet substrate uses ([`BytesMut`] plus
//! the big-endian [`BufMut`] putters) is reimplemented here over a plain
//! `Vec<u8>`. Semantics match the real crate for this subset; swapping in
//! the real dependency requires no source changes.

#![forbid(unsafe_code)]

use core::ops::{Deref, DerefMut};

/// A growable byte buffer, API-compatible with `bytes::BytesMut` for the
/// operations this workspace performs.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub const fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with at least the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Remove all bytes, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shorten the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Append the given bytes.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(value: &[u8]) -> Self {
        BytesMut {
            inner: value.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl core::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            for esc in core::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Writer trait matching `bytes::BufMut` for the putters used here.
/// Multi-byte integers are written big-endian (network order), exactly as
/// the real crate does.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u16` in big-endian byte order.
    fn put_u16(&mut self, v: u16);
    /// Append a `u32` in big-endian byte order.
    fn put_u32(&mut self, v: u32);
    /// Append a `u64` in big-endian byte order.
    fn put_u64(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn putters_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0A0B_0C0D_0E0F);
        assert_eq!(
            &b[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F]
        );
    }

    #[test]
    fn slice_round_trip_and_mutation() {
        let mut b = BytesMut::from(&b"hello"[..]);
        assert_eq!(b.len(), 5);
        b[0] = b'H';
        assert_eq!(&b[..], b"Hello");
        b.clear();
        assert!(b.is_empty());
    }
}
