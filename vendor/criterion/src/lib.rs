//! Minimal offline shim for [`criterion`](https://docs.rs/criterion).
//!
//! Implements the subset the bench targets use — `Criterion` with the
//! builder knobs, `bench_function`/`Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-batches timer instead of criterion's full statistical
//! machinery. Good enough to catch order-of-magnitude regressions and to
//! keep `cargo bench` runnable offline; swap in the real crate for serious
//! measurement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, API-compatible with criterion's builder for the knobs
/// this workspace sets.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set how long to warm up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of timing samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group (report-flush hook in the real crate; no-op here).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time the routine: warm up, then take `sample_size` batched samples
    /// within the measurement budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Batch so each sample is long enough to time reliably (~≥100 µs),
        // while the whole run respects the measurement budget.
        let budget = self.measurement.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)) as u64;
        let batch = (total_iters / self.sample_size as u64)
            .max((100e-6 / per_iter.max(1e-9)) as u64)
            .clamp(1, u64::MAX);
        let deadline = Instant::now() + self.measurement;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("sample NaN"));
        let median = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)`
/// or the struct form with an explicit `config = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut ran = false;
        c.bench_function("shim/self_test", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        assert!(ran);
    }
}
