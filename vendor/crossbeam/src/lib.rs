//! Minimal offline shim for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate: only [`queue::ArrayQueue`], the bounded MPMC queue the real-thread
//! Metronome runtime drains.
//!
//! The real crate's queue is a lock-free ring; this shim keeps the exact
//! API and semantics (bounded, multi-producer multi-consumer, `push`
//! returns the rejected value when full) over a mutexed `VecDeque` so the
//! workspace stays `unsafe`-free and offline-buildable. Throughput is
//! lower, but correctness — which the protocol tests exercise hard — is
//! identical, and swapping in the real dependency needs no source changes.

#![forbid(unsafe_code)]

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// A bounded multi-producer multi-consumer queue.
    #[derive(Debug)]
    pub struct ArrayQueue<T> {
        cap: usize,
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> ArrayQueue<T> {
        /// Create a queue holding at most `cap` items.
        ///
        /// # Panics
        ///
        /// Panics if `cap` is zero (as the real `ArrayQueue` does).
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            ArrayQueue {
                cap,
                inner: Mutex::new(VecDeque::with_capacity(cap)),
            }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Attempt to enqueue `value`; returns it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.guard();
            if q.len() >= self.cap {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Dequeue the oldest item, if any.
        pub fn pop(&self) -> Option<T> {
            self.guard().pop_front()
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.guard().len()
        }

        /// True if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.guard().is_empty()
        }

        /// True if the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() >= self.cap
        }

        /// The fixed capacity.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn bounded_fifo() {
            let q = ArrayQueue::new(2);
            assert!(q.push(1).is_ok());
            assert!(q.push(2).is_ok());
            assert_eq!(q.push(3), Err(3));
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn mpmc_conserves_items() {
            let q = Arc::new(ArrayQueue::new(64));
            let n_per_producer = 10_000u64;
            let consumed = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let mut handles = Vec::new();
            for p in 0..2u64 {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    for i in 0..n_per_producer {
                        let mut v = p * n_per_producer + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                }));
            }
            for _ in 0..2 {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                let sum = Arc::clone(&sum);
                handles.push(std::thread::spawn(move || {
                    use std::sync::atomic::Ordering;
                    while consumed.load(Ordering::Relaxed) < 2 * n_per_producer {
                        if let Some(v) = q.pop() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(v, Ordering::Relaxed);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let total = 2 * n_per_producer;
            assert_eq!(consumed.load(std::sync::atomic::Ordering::Relaxed), total);
            assert_eq!(
                sum.load(std::sync::atomic::Ordering::Relaxed),
                total * (total - 1) / 2
            );
        }
    }
}
