//! Minimal offline shim for [`parking_lot`](https://docs.rs/parking_lot):
//! a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`), which is the only API the workspace uses. Backed by
//! `std::sync::Mutex` with poison recovery, so semantics under panic match
//! parking_lot's "poisoning-free" behavior.

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// New unlocked mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock stays usable after a panic.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
