//! Minimal offline shim for [`proptest`](https://docs.rs/proptest).
//!
//! Implements the subset the property tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, `any::<T>()` for the primitive types,
//! range strategies, tuple strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros. Each test runs a fixed number of cases from a
//! deterministic per-test seed (no shrinking); failures report the plain
//! panic. Swap in the real crate for shrinking and persistence.

#![forbid(unsafe_code)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Number of random cases each property runs.
pub const CASES: usize = 64;

/// Deterministic test RNG (SplitMix64).
pub mod test_runner {
    /// A small deterministic generator seeding each property test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                // Multiply-shift bounded draw (Lemire); bias is negligible
                // for test-case generation.
                ((self.next_u64() as u128 * bound as u128) >> 64) as u64
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.new_value(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategies {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo + rng.below(span + 1) as $t
                    }
                }
            }
        )+
    };
}
range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident/$v:ident),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.new_value(rng),)+)
                }
            }
        )+
    };
}
tuple_strategies! {
    (A/a, B/b)
    (A/a, B/b, C/c)
    (A/a, B/b, C/c, D/d)
    (A/a, B/b, C/c, D/d, E/e)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for proptest_case in 0..$crate::CASES {
                    let _ = proptest_case;
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u16)> {
        (any::<u32>(), 1u16..=9).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1u8..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Vec sizes respect the size range; maps apply.
        #[test]
        fn vec_and_map(v in prop::collection::vec(arb_pair(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for (_a, b) in v {
                prop_assert!((1..=9).contains(&b));
            }
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
